"""Exhaustive crash-sweep harness: enumerate crash points, verify recovery.

The paper's recovery story (Section IV-E) claims a crash at *any* point
rolls N-TADOC back to its previous checkpoint.  This harness turns that
claim into a machine-checked sweep.  It runs the real pipeline
(compress -> initialize -> traverse) under fault injection
(:mod:`repro.nvm.faults`), enumerates crash points -- every sampled write
event, every flush boundary, seeded torn-line subsets of every flush,
mid-flush line-persist cuts, and targeted media corruption -- and for
each wreckage:

1. realizes the power loss (``memory.crash()``),
2. runs :func:`~repro.core.recovery.recover_pool`,
3. asserts the **invariant triad**:

   * the recovered state is a legal checkpoint prefix (the phase marker
     names a phase whose data flush completed -- never a later one);
   * committed transactions survive; uncommitted ones vanish (the
     recovered transactional state is one of the guaranteed snapshots);
   * resuming from the recovery report reproduces the uncrashed run's
     analytics output **bit-identically**.

The sweep is fully deterministic under a fixed seed: the same seed
enumerates the same points, tears the same flushes the same way, and
emits byte-identical JSON (no timestamps, sorted keys).  A JSON report
summarizes points swept, recoveries by resume phase, violations (the
sweep's exit status), and the mean simulated recovery cost.

See docs/recovery.md for the fault model and the judging rules.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass

from repro.core.engine import EngineConfig, NTadocEngine, RunResult
from repro.core.recovery import RecoveryReport, recover_pool
from repro.errors import CrashPoint, RecoveryError
from repro.nvm.device import DeviceProfile
from repro.nvm.faults import FaultPlan, ReadCorruption, TornFlush
from repro.nvm.memory import SimulatedClock, SimulatedMemory
from repro.nvm.persist import PhasePersistence, TransactionLog
from repro.nvm.pool import NvmPool
from repro.sequitur import compress_files

#: Phase-persistence flush schedule: after this many completed flushes,
#: this phase marker is durable.  The engine's phase path emits exactly
#: two flushes per phase (data+directory barrier, then the marker).
_MARKER_AFTER_FLUSH = {2: "initialization", 4: "traversal"}
_ENGINE_FLUSHES = 4

_TX_SLOTS = 8
_TX_SLOT_BYTES = 8


@dataclass(frozen=True)
class SweepConfig:
    """Bounds of one sweep.  ``None`` sample counts mean *exhaustive*.

    Attributes:
        seed: Master seed; fixes point selection and every tear.
        task: Analytics task driven through the engine scenario.
        engine_write_points: Write-event crash samples in the engine
            scenario (``None`` = every write event).
        engine_line_points: Mid-flush line-persist crash samples
            (``None`` = every line-persist event).
        torn_per_flush: Seeded torn-subset variants per flush event.
        tx_write_points: Write-event crash samples in the transaction
            scenario (``None`` = every write event).
        tx_torn_points: Seeded torn-flush samples in the transaction
            scenario.
        ingest_write_points: Write-event crash samples during the
            segmented-corpus compaction scenario (``None`` = every
            write event).
        ingest_torn_points: Seeded torn-flush samples during the
            compaction scenario.
        integrity_rules: DAG rules spot-checked against the source
            grammar after each engine recovery.
        kernels: Bulk-kernel mode for the engine scenario (one of
            ``repro.kernels.KERNEL_MODES``).  Reports are bit-identical
            across modes; sweeping with kernels active exercises their
            stand-down when a fault plan arms and the resume paths over
            kernel-written pools.
    """

    seed: int = 20240817
    task: str = "word_count"
    engine_write_points: int | None = 64
    engine_line_points: int | None = 24
    torn_per_flush: int = 8
    tx_write_points: int | None = 48
    tx_torn_points: int = 24
    ingest_write_points: int | None = 12
    ingest_torn_points: int = 4
    integrity_rules: int = 3
    kernels: str = "auto"

    @staticmethod
    def smoke(seed: int = 20240817) -> "SweepConfig":
        """The bounded configuration CI runs (still >= 200 points)."""
        return SweepConfig(seed=seed)

    @staticmethod
    def full(seed: int = 20240817) -> "SweepConfig":
        """Exhaustive write/line enumeration with denser tear sampling."""
        return SweepConfig(
            seed=seed,
            engine_write_points=None,
            engine_line_points=None,
            torn_per_flush=16,
            tx_write_points=None,
            tx_torn_points=64,
            ingest_write_points=None,
            ingest_torn_points=16,
        )


def _smoke_corpus():
    """Small deterministic corpus with enough repetition to compress."""
    phrase = (
        "persistent memory analytics traverse the compressed dag "
        "and count every word without decompression "
    )
    files = [
        ("doc0.txt", (phrase + "alpha beta gamma ") * 5),
        ("doc1.txt", (phrase + "beta gamma delta ") * 5),
        ("doc2.txt", ("delta alpha " + phrase) * 5),
    ]
    return compress_files(files)


def _jsonable(value):
    if isinstance(value, dict):
        return {
            str(k): _jsonable(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, set):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, float):
        return round(value, 9)
    return value


def canonical_result(value) -> str:
    """Canonical JSON for bit-identical result comparison."""
    return json.dumps(_jsonable(value), sort_keys=True)


def _decode_blackbox(mem) -> tuple[dict | None, dict | None]:
    """Decode the crashed image's flight recorder, fully uncharged.

    Works on a throwaway copy of the post-crash image so neither the
    clock nor the cache of the memory under test moves before recovery.
    Returns ``(decoded, report)`` or ``(None, None)`` when the image has
    no readable directory / no ``__flightrec__`` region.
    """
    from repro.nvm.flightrec import (
        blackbox_report,
        decode_device_image,
        device_image,
    )

    decoded = decode_device_image(device_image(mem))
    if decoded is None or not decoded["present"]:
        return None, None
    return decoded, blackbox_report(decoded, tail=8)


def _blackbox_problem(decoded: dict, bb: dict, allowed) -> str | None:
    """Judge one decoded ring against the black-box contract.

    A single crash tears at most the one slot the cut landed in; the
    surviving events must be chronologically consistent; and when a
    legal checkpoint set is known, the ring's committed-phase view must
    fall inside it (the same +-1-torn-flush window the marker gets).
    """
    damaged = sum(1 for r in decoded["records"] if r.kind != "event")
    if damaged > 1:
        return f"{damaged} torn/unknown slots; one crash tears at most one"
    events = [r for r in decoded["records"] if r.kind == "event"]
    seqs = [r.seq for r in events]
    if seqs != sorted(set(seqs)):
        return "event sequence numbers are not strictly increasing"
    times = [r.sim_ns for r in events]
    if any(b < a for a, b in zip(times, times[1:])):
        return "event timestamps regress along the sequence"
    if allowed is not None and bb["last_completed_phase"] not in allowed:
        return (
            f"committed-phase view {bb['last_completed_phase']!r} outside "
            f"the legal checkpoint set {sorted(map(str, allowed))}"
        )
    return None


def _expected_marker(completed_flushes: int) -> str | None:
    best = None
    for ordinal, name in _MARKER_AFTER_FLUSH.items():
        if completed_flushes >= ordinal:
            best = name
    return best


def _completed_flushes_at_write(profiles, write_index: int) -> int:
    """Flushes fully completed before write event ``write_index`` fires."""
    return sum(1 for p in profiles if p["writes_before"] < write_index)


class _Sweep:
    """One sweep run: accumulates points, recoveries, and violations."""

    def __init__(self, config: SweepConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.by_kind: dict[str, int] = {}
        self.resume_phases: dict[str, int] = {}
        self.violations: list[dict] = []
        self.recovery_costs: list[float] = []
        self.points = 0
        self.blackbox = {"decoded": 0, "absent": 0, "torn_records": 0}
        self.blackbox_sample: dict | None = None

    # -- bookkeeping ----------------------------------------------------

    def point(self, kind: str) -> None:
        self.points += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1

    def violation(self, scenario: str, kind: str, index, problem: str) -> None:
        self.violations.append(
            {
                "scenario": scenario,
                "kind": kind,
                "index": index,
                "problem": problem,
            }
        )

    def recovered(self, report: RecoveryReport) -> None:
        self.recovery_costs.append(report.recovery_ns)
        phase = report.resume_phase
        self.resume_phases[phase] = self.resume_phases.get(phase, 0) + 1

    def restarted(self) -> None:
        self.resume_phases["restart"] = self.resume_phases.get("restart", 0) + 1

    def check_blackbox(
        self, scenario: str, kind: str, index, mem, allowed, require: bool
    ) -> dict | None:
        """Decode + judge the flight recorder at one crash point.

        ``require`` is True when the image is known recoverable (the
        directory reached media), so an absent black box is a violation
        there; ``allowed`` is the legal committed-phase set, or ``None``
        to skip phase attribution.  Returns the report for sampling.
        """
        decoded, bb = _decode_blackbox(mem)
        if bb is None:
            self.blackbox["absent"] += 1
            if require:
                self.violation(
                    scenario, kind, index,
                    "black box: flight recorder absent from a recoverable "
                    "image",
                )
            return None
        self.blackbox["decoded"] += 1
        self.blackbox["torn_records"] += sum(
            1 for r in decoded["records"] if r.kind != "event"
        )
        problem = _blackbox_problem(decoded, bb, allowed)
        if problem:
            self.violation(scenario, kind, index, f"black box: {problem}")
        return bb

    def _sample(self, total: int, count: int | None) -> list[int]:
        """1-based event ordinals to crash on: all, or a seeded sample."""
        if total <= 0:
            return []
        if count is None or count >= total:
            return list(range(1, total + 1))
        return sorted(self.rng.sample(range(1, total + 1), count))

    # -- scenario 1: the engine pipeline --------------------------------

    def run_engine_scenario(self) -> str:
        cfg = self.config
        corpus = self._corpus = _smoke_corpus()
        engine = NTadocEngine(corpus, EngineConfig(kernels=cfg.kernels))
        counter = FaultPlan()
        reference = engine.run(self._task(), fault_plan=counter)
        self.reference_json = canonical_result(reference.result)
        profiles = counter.flush_profiles
        if len(profiles) != _ENGINE_FLUSHES:
            self.violation(
                "engine",
                "schedule",
                len(profiles),
                f"expected {_ENGINE_FLUSHES} flushes under phase "
                f"persistence, observed {len(profiles)}",
            )
        self._engine = engine
        self._profiles = profiles

        for k in self._sample(counter.events["write"], cfg.engine_write_points):
            completed = _completed_flushes_at_write(profiles, k)
            self._engine_point(
                "write",
                k,
                FaultPlan("write", k),
                allowed={_expected_marker(completed)},
                allow_restart=completed < 1,
            )

        for profile in profiles:
            f = profile["flush"]
            self._engine_point(
                "flush",
                f,
                FaultPlan("flush", f),
                allowed={_expected_marker(f - 1)},
                allow_restart=f <= 1,
            )
            for _ in range(cfg.torn_per_flush):
                torn = TornFlush(
                    order_seed=self.rng.randrange(1 << 30),
                    persisted_lines=self.rng.randint(
                        0, max(profile["dirty_lines"], 1)
                    ),
                    partial_bytes=self.rng.randrange(0, 257, 8),
                )
                self._engine_point(
                    "torn_flush",
                    (f, torn.order_seed),
                    FaultPlan("flush", f, torn=torn),
                    allowed={
                        _expected_marker(f - 1),
                        _expected_marker(f),
                    },
                    allow_restart=f <= 1,
                )

        total_lines = sum(p["dirty_lines"] for p in profiles)
        line_to_flush: list[int] = []
        for p in profiles:
            line_to_flush.extend([p["flush"]] * p["dirty_lines"])
        for ln in self._sample(total_lines, cfg.engine_line_points):
            f = line_to_flush[ln - 1]
            self._engine_point(
                "line_persist",
                ln,
                FaultPlan("line_persist", ln),
                allowed={_expected_marker(f - 1), _expected_marker(f)},
                allow_restart=f <= 1,
            )
        return self.reference_json

    def _task(self):
        from repro.analytics import task_by_name

        return task_by_name(self.config.task)

    def _engine_point(
        self,
        kind: str,
        index,
        plan: FaultPlan,
        allowed: set,
        allow_restart: bool,
    ) -> None:
        self.point(kind)
        try:
            self._engine.run(self._task(), fault_plan=plan)
        except CrashPoint:
            pass
        else:
            self.violation("engine", kind, index, "crash point did not fire")
            return
        mem = plan.memory
        mem.disarm_faults()
        mem.crash()
        bb = self.check_blackbox(
            "engine", kind, index, mem, allowed, require=not allow_restart
        )
        if bb is not None and kind == "flush" and index == _ENGINE_FLUSHES:
            self.blackbox_sample = bb
        try:
            report = recover_pool(mem)
        except RecoveryError as exc:
            if not allow_restart:
                self.violation(
                    "engine",
                    kind,
                    index,
                    f"recovery refused a recoverable image: {exc}",
                )
                return
            self.restarted()
            resumed = self._engine.run(self._task())
        else:
            if report.last_completed_phase not in allowed:
                self.violation(
                    "engine",
                    kind,
                    index,
                    f"marker {report.last_completed_phase!r} outside legal "
                    f"checkpoint set {sorted(map(str, allowed))}",
                )
                return
            if not self._check_integrity(kind, index, report):
                return
            self.recovered(report)
            resumed = self._engine.run(self._task(), resume_from=report)
        resumed_json = canonical_result(resumed.result)
        if resumed_json != self.reference_json:
            self.violation(
                "engine",
                kind,
                index,
                "resumed analytics output differs from the uncrashed run",
            )

    def _check_integrity(self, kind, index, report: RecoveryReport) -> bool:
        """Recovered DAG bodies must match the source grammar exactly."""
        if report.pruned is None:
            return True
        n = self._corpus.n_rules
        sample = sorted({0, n // 2, n - 1} | set(
            self.rng.sample(range(n), min(self.config.integrity_rules, n))
        ))
        for rule in sample:
            if report.pruned.raw_body(rule) != list(self._corpus.rules[rule]):
                self.violation(
                    "engine",
                    kind,
                    index,
                    f"recovered DAG rule {rule} differs from the grammar",
                )
                return False
        return True

    # -- scenario 2: the transactional workload -------------------------

    def run_tx_scenario(self) -> None:
        cfg = self.config
        specs = self._tx_specs()
        states = self._tx_states(specs)
        counter = FaultPlan()
        _, _, boundaries = self._run_tx_workload(counter, specs)
        profiles = counter.flush_profiles
        total_writes = counter.events["write"]
        total_flushes = counter.events["flush"]

        def judge_write(k: int) -> tuple[set[int], bool]:
            committed = sum(1 for _, end in boundaries if end["writes"] < k)
            completed = _completed_flushes_at_write(profiles, k)
            return {committed}, completed < 1

        for k in self._sample(total_writes, cfg.tx_write_points):
            allowed, restart_ok = judge_write(k)
            self._tx_point(
                "tx_write", k, FaultPlan("write", k), specs, states,
                allowed, restart_ok,
            )

        def judge_flush(f: int, torn: bool) -> tuple[set[int], bool]:
            committed = sum(1 for _, end in boundaries if end["flushes"] < f)
            in_window = any(
                begin["flushes"] < f <= end["flushes"]
                for begin, end in boundaries
            )
            allowed = {committed}
            if torn and in_window:
                allowed.add(committed + 1)
            return allowed, f <= 1

        for f in range(1, total_flushes + 1):
            allowed, restart_ok = judge_flush(f, torn=False)
            self._tx_point(
                "tx_flush", f, FaultPlan("flush", f), specs, states,
                allowed, restart_ok,
            )
        for _ in range(cfg.tx_torn_points):
            f = self.rng.randint(1, total_flushes)
            dirty = next(
                p["dirty_lines"] for p in profiles if p["flush"] == f
            )
            torn = TornFlush(
                order_seed=self.rng.randrange(1 << 30),
                persisted_lines=self.rng.randint(0, max(dirty, 1)),
                partial_bytes=self.rng.randrange(0, 257, 8),
            )
            allowed, restart_ok = judge_flush(f, torn=True)
            self._tx_point(
                "tx_torn_flush",
                (f, torn.order_seed),
                FaultPlan("flush", f, torn=torn),
                specs, states, allowed, restart_ok,
            )

    def _tx_specs(self) -> list[list[tuple[int, int]]]:
        rng = random.Random(self.config.seed ^ 0x5EED)
        specs = []
        for _ in range(4):
            specs.append(
                [
                    (rng.randrange(_TX_SLOTS), rng.randrange(1, 1 << 32))
                    for _ in range(rng.randint(2, 3))
                ]
            )
        return specs

    @staticmethod
    def _tx_states(specs) -> list[bytes]:
        """Guaranteed snapshots: the state after each committed tx."""
        size = _TX_SLOTS * _TX_SLOT_BYTES
        states = [bytes(size)]
        current = bytearray(size)
        for spec in specs:
            for slot, value in spec:
                current[slot * 8 : slot * 8 + 8] = value.to_bytes(8, "little")
            states.append(bytes(current))
        return states

    def _run_tx_workload(self, plan: FaultPlan, specs):
        """Setup + N transactions; records event counters at tx edges.

        Transactions are driven through explicit begin/commit (not the
        ``transaction()`` context manager) so an injected CrashPoint
        propagates without running ``abort()`` -- after power loss,
        nothing executes.
        """
        clock = SimulatedClock()
        mem = SimulatedMemory(
            DeviceProfile.nvm(), 1 << 18, clock, name="txpool"
        )
        mem.arm_faults(plan)
        pool = NvmPool(mem)
        data_off = pool.alloc_region("data", _TX_SLOTS * _TX_SLOT_BYTES)
        mem.fill(data_off, _TX_SLOTS * _TX_SLOT_BYTES)
        log = TransactionLog(pool, capacity=4096)
        pool.flush()  # directory + zeroed slots durable
        self._tx_data_off = data_off

        def snap():
            return {
                "writes": plan.events["write"],
                "flushes": plan.events["flush"],
            }

        boundaries = []
        for spec in specs:
            begin = snap()
            tx = log.begin()
            for slot, value in spec:
                tx.write(
                    data_off + slot * _TX_SLOT_BYTES,
                    value.to_bytes(8, "little"),
                )
            tx.commit()
            boundaries.append((begin, snap()))
        return mem, pool, boundaries

    def _tx_point(
        self, kind, index, plan, specs, states, allowed, restart_ok
    ) -> None:
        self.point(kind)
        try:
            self._run_tx_workload(plan, specs)
        except CrashPoint:
            pass
        else:
            self.violation("tx", kind, index, "crash point did not fire")
            return
        mem = plan.memory
        mem.disarm_faults()
        mem.crash()
        try:
            report = recover_pool(mem)
        except RecoveryError as exc:
            if not restart_ok:
                self.violation(
                    "tx", kind, index,
                    f"recovery refused a recoverable image: {exc}",
                )
            else:
                self.restarted()
            return
        self.recovered(report)
        max_records = max(len(spec) for spec in specs)
        if not 0 <= report.transactions_rolled_back <= max_records:
            self.violation(
                "tx", kind, index,
                f"{report.transactions_rolled_back} undo records rolled "
                f"back; at most one {max_records}-write transaction can "
                "be in flight",
            )
            return
        state = mem.read(self._tx_data_off, _TX_SLOTS * _TX_SLOT_BYTES)
        legal = {states[j] for j in allowed if 0 <= j < len(states)}
        if state not in legal:
            self.violation(
                "tx", kind, index,
                "recovered slots are not a guaranteed snapshot: committed "
                "transactions must survive and uncommitted ones vanish "
                f"(allowed snapshots {sorted(allowed)})",
            )

    # -- scenario 4: segmented-corpus compaction -------------------------

    def run_ingest_scenario(self) -> None:
        """Crash everywhere inside a segment compaction; recovery must
        land on exactly the pre- or post-compaction segment set (never a
        mix), and recovered analytics must match the uncrashed run.

        This machine-checks the seal-new-then-retire-old ordering of
        :meth:`repro.ingest.engine.SegmentedEngine.compact`: committed
        compactions survive, half-done ones vanish.
        """
        from repro.ingest import canonical_json

        cfg = self.config
        engine = self._ingest_workload()
        pre = set(engine.pool.segment_names())
        counter = FaultPlan()
        engine.memory.arm_faults(counter)
        engine.compact()
        engine.memory.disarm_faults()
        post = set(engine.pool.segment_names())
        self._ingest_reference = canonical_json(
            engine.run_tasks(["word_count"]).rendered["word_count"]
        )
        profiles = counter.flush_profiles

        for k in self._sample(counter.events["write"], cfg.ingest_write_points):
            self._ingest_point("ingest_write", k, FaultPlan("write", k), pre, post)
        for profile in profiles:
            f = profile["flush"]
            self._ingest_point("ingest_flush", f, FaultPlan("flush", f), pre, post)
        for _ in range(cfg.ingest_torn_points):
            profile = profiles[self.rng.randrange(len(profiles))]
            torn = TornFlush(
                order_seed=self.rng.randrange(1 << 30),
                persisted_lines=self.rng.randint(
                    0, max(profile["dirty_lines"], 1)
                ),
                partial_bytes=self.rng.randrange(0, 257, 8),
            )
            self._ingest_point(
                "ingest_torn_flush",
                (profile["flush"], torn.order_seed),
                FaultPlan("flush", profile["flush"], torn=torn),
                pre,
                post,
            )

    @staticmethod
    def _ingest_workload():
        """Segmented engine with 3 sealed segments and 2 tombstones,
        ready to compact.  Deterministic: every point replays it."""
        from repro.core.engine import EngineConfig as _EngineConfig
        from repro.ingest import SegmentedEngine

        engine = SegmentedEngine(
            _EngineConfig(), pool_bytes=1 << 24, seal_threshold_tokens=10**9
        )
        phrase = "segments seal and compact while queries keep running "
        for i in range(9):
            engine.append(f"doc{i}.txt", phrase + f"tail w{i % 3} w{i % 2}")
            if i % 3 == 2:
                engine.seal()
        engine.delete("doc2.txt")
        engine.delete("doc5.txt")
        return engine

    def _ingest_point(self, kind, index, plan: FaultPlan, pre, post) -> None:
        from repro.ingest import SegmentedEngine, canonical_json

        self.point(kind)
        engine = self._ingest_workload()
        engine.memory.arm_faults(plan)
        try:
            engine.compact()
        except CrashPoint:
            pass
        else:
            self.violation("ingest", kind, index, "crash point did not fire")
            return
        mem = engine.memory
        mem.disarm_faults()
        mem.crash()
        # The segmented workload sealed (and flushed) segments before the
        # compaction started, so the black box must be recoverable here.
        self.check_blackbox(
            "ingest", kind, index, mem, allowed=None, require=True
        )
        start_ns = mem.clock.ns
        try:
            reopened = SegmentedEngine.reopen(
                mem, dict(engine.artifacts), engine.config
            )
        except RecoveryError as exc:
            self.violation("ingest", kind, index, f"reopen refused: {exc}")
            return
        names = set(reopened.pool.segment_names())
        if names not in (pre, post):
            self.violation(
                "ingest",
                kind,
                index,
                f"recovered segment set {sorted(names)} is neither the "
                f"pre- nor the post-compaction set (half-compacted state "
                "survived)",
            )
            return
        self.recovery_costs.append(mem.clock.ns - start_ns)
        self.resume_phases["ingest_reopen"] = (
            self.resume_phases.get("ingest_reopen", 0) + 1
        )
        recovered = canonical_json(
            reopened.run_tasks(["word_count"]).rendered["word_count"]
        )
        if recovered != self._ingest_reference:
            self.violation(
                "ingest",
                kind,
                index,
                "recovered analytics differ from the uncrashed run",
            )

    # -- scenario 3: targeted media corruption --------------------------

    def run_corruption_scenario(self) -> None:
        self._corrupt_early_log_record()
        self._corrupt_last_log_record()
        self._corrupt_phase_marker_slot()

    def _interrupted_tx_pool(self):
        """A pool whose log holds 3 durable records of an open tx."""
        clock = SimulatedClock()
        mem = SimulatedMemory(
            DeviceProfile.nvm(), 1 << 18, clock, name="cpool"
        )
        pool = NvmPool(mem)
        data_off = pool.alloc_region("data", _TX_SLOTS * _TX_SLOT_BYTES)
        mem.fill(data_off, _TX_SLOTS * _TX_SLOT_BYTES)
        log = TransactionLog(pool, capacity=4096)
        pool.flush()
        tx = log.begin()
        for slot in range(3):
            tx.write(data_off + slot * 8, (0xA0 + slot).to_bytes(8, "little"))
        mem.flush()  # all three records (and data) durable, tx still open
        mem.crash()
        log_off, _ = pool.get_region("__txlog__")
        return mem, log_off, data_off

    def _corrupt_early_log_record(self) -> None:
        """Corrupting a non-tail record must raise, never silently undo."""
        self.point("corruption")
        mem, log_off, _ = self._interrupted_tx_pool()
        from repro.nvm.persist import _LOG_HEADER_SIZE

        mem.arm_faults(
            FaultPlan(
                corruptions=[
                    ReadCorruption(offset=log_off + _LOG_HEADER_SIZE + 4)
                ]
            )
        )
        try:
            recover_pool(mem)
        except RecoveryError as exc:
            if "record 0" not in str(exc):
                self.violation(
                    "corruption", "early_record", 0,
                    f"error does not name the offending record: {exc}",
                )
        else:
            self.violation(
                "corruption", "early_record", 0,
                "recovery trusted a corrupt undo record",
            )

    def _corrupt_last_log_record(self) -> None:
        """A corrupt final record is a torn tail: truncated, not fatal."""
        self.point("corruption")
        mem, log_off, data_off = self._interrupted_tx_pool()
        from repro.nvm.persist import _LOG_HEADER_SIZE, _LOG_RECORD_SIZE

        record_span = _LOG_RECORD_SIZE + 8
        last = log_off + _LOG_HEADER_SIZE + 2 * record_span + 4
        mem.arm_faults(FaultPlan(corruptions=[ReadCorruption(offset=last)]))
        try:
            report = recover_pool(mem)
        except RecoveryError as exc:
            self.violation(
                "corruption", "torn_tail", 2,
                f"torn-tail record was treated as fatal: {exc}",
            )
            return
        mem.disarm_faults()
        if report.transactions_rolled_back != 2:
            self.violation(
                "corruption", "torn_tail", 2,
                "expected exactly the two validated records rolled back, "
                f"got {report.transactions_rolled_back}",
            )
            return
        # Records 0 and 1 were undone; record 2's slot is *not* trusted
        # (the torn record is skipped), so only slots 0 and 1 must be
        # back to their pre-transaction zeros.
        state = mem.read(data_off, 16)
        if state != bytes(16):
            self.violation(
                "corruption", "torn_tail", 2,
                "validated undo records were not rolled back",
            )

    def _corrupt_phase_marker_slot(self) -> None:
        """A corrupt newest marker slot falls back to the other slot."""
        self.point("corruption")
        clock = SimulatedClock()
        mem = SimulatedMemory(
            DeviceProfile.nvm(), 1 << 18, clock, name="mpool"
        )
        pool = NvmPool(mem)
        phases = PhasePersistence(pool)
        pool.flush()
        phases.complete_phase("initialization")  # count 1 -> slot 1
        pool.flush()
        phases.complete_phase("traversal")  # count 2 -> slot 0
        mem.crash()
        marker_off, _ = pool.get_region("__phases__")
        # Flip bytes inside slot 0 (the count-2 marker).
        mem.arm_faults(
            FaultPlan(
                corruptions=[ReadCorruption(offset=marker_off + 2, mask=b"\xff\xff")]
            )
        )
        try:
            report = recover_pool(mem)
        except RecoveryError as exc:
            self.violation(
                "corruption", "marker_slot", 0,
                f"marker corruption was fatal instead of falling back: {exc}",
            )
            return
        if report.last_completed_phase != "initialization":
            self.violation(
                "corruption", "marker_slot", 0,
                "reader did not fall back to the surviving ping-pong slot "
                f"(got {report.last_completed_phase!r})",
            )


def run_sweep(config: SweepConfig | None = None) -> dict:
    """Run the full sweep; return the JSON-ready report dict."""
    config = config or SweepConfig()
    sweep = _Sweep(config)
    reference_json = sweep.run_engine_scenario()
    sweep.run_tx_scenario()
    sweep.run_ingest_scenario()
    sweep.run_corruption_scenario()
    costs = sweep.recovery_costs
    return {
        "seed": config.seed,
        "config": _jsonable(asdict(config)),
        "points_swept": sweep.points,
        "by_kind": _jsonable(sweep.by_kind),
        "recoveries": len(costs),
        "recoveries_by_resume_phase": _jsonable(sweep.resume_phases),
        "mean_recovery_ns": round(sum(costs) / len(costs), 3) if costs else 0.0,
        "blackbox": _jsonable(
            {**sweep.blackbox, "sample": sweep.blackbox_sample}
        ),
        "violations": sweep.violations,
        "result_digest": hashlib.sha256(
            reference_json.encode("utf-8")
        ).hexdigest()[:16],
    }


def render_report(report: dict) -> str:
    """Byte-stable JSON rendering of a sweep report."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


__all__ = [
    "SweepConfig",
    "RunResult",
    "canonical_result",
    "render_report",
    "run_sweep",
]
