"""Word dictionary: the digital encoding step of TADOC.

TADOC "performs a digital encoding of the original data input employing a
dictionary conversion" (Section II) before grammar inference.  The
:class:`Dictionary` assigns dense integer ids to words in first-seen
order; ids are what flow through Sequitur, the NVM pool, and every
analytics task.  Words are only converted back to strings when results
are rendered for the user.
"""

from __future__ import annotations

from typing import Iterable


def tokenize(text: str, mode: str = "words") -> list[str]:
    """Split text into tokens.

    Args:
        text: Input text.
        mode: ``"words"`` (whitespace-delimited, lowercased -- the
            paper's word-granularity model) or ``"chars"`` (one token per
            non-space character -- the granularity used by the TADOC
            line's Chinese-dataset work [CCF THPC'23], where text has no
            whitespace word boundaries).

    Raises:
        ValueError: for an unknown mode.
    """
    if mode == "words":
        return text.lower().split()
    if mode == "chars":
        return [ch for ch in text if not ch.isspace()]
    raise ValueError(f"unknown tokenizer mode {mode!r}")


class Dictionary:
    """Bidirectional word <-> id mapping with dense ids."""

    def __init__(self) -> None:
        self._word_to_id: dict[str, int] = {}
        self._id_to_word: list[str] = []

    def __len__(self) -> int:
        return len(self._id_to_word)

    def add(self, word: str) -> int:
        """Return the id for ``word``, assigning a new one if unseen."""
        existing = self._word_to_id.get(word)
        if existing is not None:
            return existing
        word_id = len(self._id_to_word)
        self._word_to_id[word] = word_id
        self._id_to_word.append(word)
        return word_id

    def encode(self, words: Iterable[str]) -> list[int]:
        """Encode a word sequence, growing the dictionary as needed."""
        return [self.add(word) for word in words]

    def id_of(self, word: str) -> int:
        """Return the id of a known word.

        Raises:
            KeyError: if the word has never been added.
        """
        return self._word_to_id[word]

    def word_of(self, word_id: int) -> str:
        """Return the word for ``word_id``.

        Raises:
            IndexError: for ids that were never assigned.
        """
        if not 0 <= word_id < len(self._id_to_word):
            raise IndexError(f"no word with id {word_id}")
        return self._id_to_word[word_id]

    def __contains__(self, word: str) -> bool:
        return word in self._word_to_id

    def words(self) -> list[str]:
        """All words in id order."""
        return list(self._id_to_word)

    @classmethod
    def from_words(cls, words: Iterable[str]) -> "Dictionary":
        """Build a dictionary whose ids follow the given word order."""
        dictionary = cls()
        for word in words:
            dictionary.add(word)
        return dictionary
