"""Varint on-disk format for compressed corpora.

This is the "TADOC compressed file" that sits on disk before analytics:
its size is what the paper's storage-saving numbers are measured against.

Format (all integers LEB128 varints unless noted)::

    magic   4 bytes  b"NTDC"
    version varint
    n_files varint, then per file: name length + utf-8 bytes
    vocab   varint count, then per word: length + utf-8 bytes
    rules   varint count, then per rule: body length + symbols
            (symbols are stored as varints of the partitioned id space)
"""

from __future__ import annotations

from pathlib import Path

from repro.core.grammar import CompressedCorpus
from repro.errors import CorruptDataError

_MAGIC = b"NTDC"
_VERSION = 2


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError("varints are unsigned")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


class _Reader:
    """Cursor over a serialized corpus blob."""

    def __init__(self, blob: bytes) -> None:
        self.blob = blob
        self.pos = 0

    def varint(self) -> int:
        result = 0
        shift = 0
        while True:
            if self.pos >= len(self.blob):
                raise CorruptDataError("truncated varint")
            byte = self.blob[self.pos]
            self.pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 63:
                raise CorruptDataError("varint too long")

    def take(self, size: int) -> bytes:
        if self.pos + size > len(self.blob):
            raise CorruptDataError("truncated payload")
        chunk = self.blob[self.pos : self.pos + size]
        self.pos += size
        return chunk

    def string(self) -> str:
        length = self.varint()
        try:
            return self.take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CorruptDataError("invalid utf-8 in corpus") from exc


def serialize(corpus: CompressedCorpus) -> bytes:
    """Encode a corpus into the on-disk byte format."""
    out = bytearray(_MAGIC)
    _write_varint(out, _VERSION)
    mode = corpus.token_mode.encode("utf-8")
    _write_varint(out, len(mode))
    out.extend(mode)
    _write_varint(out, len(corpus.file_names))
    for name in corpus.file_names:
        encoded = name.encode("utf-8")
        _write_varint(out, len(encoded))
        out.extend(encoded)
    _write_varint(out, len(corpus.vocab))
    for word in corpus.vocab:
        encoded = word.encode("utf-8")
        _write_varint(out, len(encoded))
        out.extend(encoded)
    _write_varint(out, len(corpus.rules))
    for body in corpus.rules:
        _write_varint(out, len(body))
        for symbol in body:
            _write_varint(out, symbol)
    return bytes(out)


def deserialize(blob: bytes) -> CompressedCorpus:
    """Decode the on-disk byte format back into a corpus.

    Raises:
        CorruptDataError: on bad magic, truncation, or malformed payloads.
    """
    if blob[:4] != _MAGIC:
        raise CorruptDataError("bad magic: not an N-TADOC corpus")
    reader = _Reader(blob)
    reader.pos = 4
    version = reader.varint()
    if version != _VERSION:
        raise CorruptDataError(f"unsupported corpus version {version}")
    token_mode = reader.string()
    if token_mode not in ("words", "chars"):
        raise CorruptDataError(f"unknown token mode {token_mode!r}")
    file_names = [reader.string() for _ in range(reader.varint())]
    vocab = [reader.string() for _ in range(reader.varint())]
    rules = []
    for _ in range(reader.varint()):
        body_len = reader.varint()
        rules.append([reader.varint() for _ in range(body_len)])
    corpus = CompressedCorpus(
        rules=rules, vocab=vocab, file_names=file_names, token_mode=token_mode
    )
    corpus.validate()
    return corpus


def save(corpus: CompressedCorpus, path: str | Path) -> int:
    """Write a corpus to disk; return the byte size written."""
    blob = serialize(corpus)
    Path(path).write_bytes(blob)
    return len(blob)


def load(path: str | Path) -> CompressedCorpus:
    """Read a corpus from disk."""
    return deserialize(Path(path).read_bytes())
