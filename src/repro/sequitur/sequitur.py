"""The Sequitur grammar-inference algorithm.

Sequitur consumes a token stream and incrementally maintains a context-free
grammar satisfying two invariants:

* **digram uniqueness** -- no pair of adjacent symbols appears more than
  once in the grammar; a repeated digram is replaced by a nonterminal.
* **rule utility** -- every rule (except the root) is referenced at least
  twice; a rule that drops to one reference is inlined and removed.

The implementation mirrors the classic linked-symbol design of
Nevill-Manning & Witten's reference implementation: each rule body is a
circular doubly-linked list anchored on a guard node, a hash index maps
digrams to their (unique) location, and ``join`` removes a stale digram
from the index whenever a link is about to be rewritten.

Tokens are arbitrary hashable values; the TADOC pipeline feeds integer
word ids plus unique per-file separator ids (which, being unique, never
form repeated digrams and therefore stay in the root rule).
"""

from __future__ import annotations

from typing import Hashable, Iterable

Token = Hashable


class _Symbol:
    """A node in a rule body: a terminal, a rule reference, or a guard."""

    __slots__ = ("grammar", "value", "rule", "prev", "next")

    def __init__(
        self,
        grammar: "Sequitur",
        value: Token = None,
        rule: "_Rule | None" = None,
    ) -> None:
        self.grammar = grammar
        self.value = value  # terminal payload (None for nonterminals/guards)
        self.rule = rule    # referenced rule (or owning rule, for guards)
        self.prev: "_Symbol | None" = None
        self.next: "_Symbol | None" = None

    # -- classification -------------------------------------------------

    def is_guard(self) -> bool:
        return self.rule is not None and self.rule.guard is self

    def is_nonterminal(self) -> bool:
        return self.rule is not None and self.rule.guard is not self

    def key(self) -> Token:
        """Hashable identity used in digram keys."""
        if self.is_nonterminal():
            return ("R", self.rule.rule_id)
        return ("T", self.value)

    # -- digram index maintenance ----------------------------------------

    def digram(self) -> tuple[Token, Token] | None:
        """The digram starting at this symbol, or None at a rule edge."""
        if self.is_guard() or self.next is None or self.next.is_guard():
            return None
        return (self.key(), self.next.key())

    def delete_digram(self) -> None:
        """Remove this digram from the index if the index points here."""
        digram = self.digram()
        if digram is None:
            return
        index = self.grammar._index
        if index.get(digram) is self:
            del index[digram]

    # -- linking ----------------------------------------------------------

    def insert_after(self, symbol: "_Symbol") -> None:
        _join(symbol, self.next)
        _join(self, symbol)

    def unlink(self) -> None:
        """Remove this symbol from its rule, fixing index and refcounts."""
        _join(self.prev, self.next)
        if not self.is_guard():
            self.delete_digram()
            if self.is_nonterminal():
                self.rule.deuse()

    # -- the heart of the algorithm ----------------------------------------

    def check(self) -> bool:
        """Enforce digram uniqueness for the digram starting here.

        Returns True when the grammar was restructured.
        """
        digram = self.digram()
        if digram is None:
            return False
        index = self.grammar._index
        match = index.get(digram)
        if match is None:
            index[digram] = self
            return False
        if match.next is self:
            return False  # overlapping occurrence; leave it alone
        _process_match(self, match)
        return True

    def substitute(self, rule: "_Rule") -> None:
        """Replace this symbol and the next with a reference to ``rule``."""
        prev = self.prev
        prev.next.unlink()       # removes self
        prev.next.unlink()       # removes the old next
        prev.insert_after(_Symbol(self.grammar, rule=rule))
        rule.reuse()
        if not prev.check():
            prev.next.check()

    def expand(self) -> None:
        """Inline the single-use rule referenced by this nonterminal."""
        rule = self.rule
        left = self.prev
        right = self.next
        first = rule.guard.next
        last = rule.guard.prev
        self.delete_digram()
        self.grammar._drop_rule(rule)
        _join(left, first)
        _join(last, right)
        digram = last.digram()
        if digram is not None:
            self.grammar._index[digram] = last


def _join(left: "_Symbol | None", right: "_Symbol | None") -> None:
    """Link two symbols, evicting the digram that is being rewritten.

    The triple-repeat bookkeeping mirrors the reference implementation:
    in a run of three equal symbols only one of the two overlapping
    digrams is indexed, so when a deletion removes that entry the
    surviving pair must be re-registered or a later repeat of the digram
    would go undetected (e.g. the stream ``2 1 1 1 2 1 0 1 1``).
    """
    if left is None or right is None:
        return
    if left.next is not None:
        left.delete_digram()

        if (
            right.prev is not None
            and right.next is not None
            and not right.is_guard()
            and not right.prev.is_guard()
            and not right.next.is_guard()
            and right.key() == right.prev.key() == right.next.key()
        ):
            right.grammar._index[(right.key(), right.next.key())] = right
        if (
            left.prev is not None
            and left.next is not None
            and not left.is_guard()
            and not left.prev.is_guard()
            and not left.next.is_guard()
            and left.key() == left.prev.key() == left.next.key()
        ):
            left.grammar._index[(left.prev.key(), left.key())] = left.prev
    left.next = right
    right.prev = left


def _process_match(new_symbol: _Symbol, match: _Symbol) -> None:
    """A digram at ``new_symbol`` repeats an earlier one at ``match``."""
    grammar = new_symbol.grammar
    if match.prev.is_guard() and match.next.next.is_guard():
        # The matching digram is the entire body of an existing rule.
        rule = match.prev.rule
        new_symbol.substitute(rule)
    else:
        # Create a new rule from copies of the digram, then replace both
        # occurrences with references to it.
        rule = grammar._new_rule()
        first_copy = _Symbol(grammar, new_symbol.value, new_symbol.rule)
        second_copy = _Symbol(
            grammar, new_symbol.next.value, new_symbol.next.rule
        )
        if first_copy.is_nonterminal():
            first_copy.rule.reuse()
        if second_copy.is_nonterminal():
            second_copy.rule.reuse()
        rule.guard.insert_after(first_copy)
        first_copy.insert_after(second_copy)
        match.substitute(rule)
        new_symbol.substitute(rule)
        grammar._index[first_copy.digram()] = first_copy
    # Rule utility: if the (re)used rule starts with a nonterminal whose
    # rule has dropped to a single use, inline that rule.
    first = rule.guard.next
    if first.is_nonterminal() and first.rule.refcount == 1:
        first.expand()


class _Rule:
    """A grammar rule: a guarded circular list of symbols."""

    __slots__ = ("rule_id", "refcount", "guard")

    def __init__(self, grammar: "Sequitur", rule_id: int) -> None:
        self.rule_id = rule_id
        self.refcount = 0
        self.guard = _Symbol(grammar, rule=self)
        self.guard.prev = self.guard
        self.guard.next = self.guard

    def reuse(self) -> None:
        self.refcount += 1

    def deuse(self) -> None:
        self.refcount -= 1

    def symbols(self) -> Iterable["_Symbol"]:
        symbol = self.guard.next
        while symbol is not self.guard:
            yield symbol
            symbol = symbol.next


class Sequitur:
    """Incremental Sequitur over an arbitrary token alphabet.

    Usage::

        seq = Sequitur()
        for token in stream:
            seq.push(token)
        rules = seq.freeze()   # list of rule bodies; rules[0] is the root
    """

    def __init__(self) -> None:
        self._index: dict[tuple[Token, Token], _Symbol] = {}
        self._rules: dict[int, _Rule] = {}
        self._next_rule_id = 0
        self._root = self._new_rule()
        self.tokens_pushed = 0

    # -- construction -----------------------------------------------------

    def push(self, token: Token) -> None:
        """Append one terminal to the root rule and restore invariants."""
        last = self._root.guard.prev
        last.insert_after(_Symbol(self, value=token))
        self.tokens_pushed += 1
        if last is not self._root.guard:
            last.check()

    def push_all(self, tokens: Iterable[Token]) -> None:
        """Append a whole stream."""
        for token in tokens:
            self.push(token)

    # -- inspection ---------------------------------------------------------

    @property
    def rule_count(self) -> int:
        """Number of live rules, including the root."""
        return len(self._rules)

    def freeze(self) -> list[list[Token | tuple[str, int]]]:
        """Return rule bodies with contiguous ids; index 0 is the root.

        Terminals appear as their token value; rule references appear as
        ``("R", new_id)`` tuples using the renumbered ids.
        """
        id_map = {self._root.rule_id: 0}
        ordered = [self._root]
        for rule_id, rule in sorted(self._rules.items()):
            if rule is self._root:
                continue
            id_map[rule_id] = len(ordered)
            ordered.append(rule)
        bodies: list[list[Token | tuple[str, int]]] = []
        for rule in ordered:
            body: list[Token | tuple[str, int]] = []
            for symbol in rule.symbols():
                if symbol.is_nonterminal():
                    body.append(("R", id_map[symbol.rule.rule_id]))
                else:
                    body.append(symbol.value)
            bodies.append(body)
        return bodies

    def expand(self) -> list[Token]:
        """Re-derive the original token stream (for verification)."""
        output: list[Token] = []

        def walk(rule: _Rule) -> None:
            for symbol in rule.symbols():
                if symbol.is_nonterminal():
                    walk(symbol.rule)
                else:
                    output.append(symbol.value)

        walk(self._root)
        return output

    def check_invariants(self) -> None:
        """Assert digram uniqueness and rule utility (testing aid).

        Raises:
            AssertionError: when either Sequitur invariant is violated.
        """
        # Digram uniqueness allows *overlapping* repeats (the classic
        # "aaa" case): two occurrences only violate the invariant when
        # they do not share a symbol.
        seen: dict[tuple[Token, Token], list[_Symbol]] = {}
        for rule in self._rules.values():
            for symbol in rule.symbols():
                digram = symbol.digram()
                if digram is not None:
                    seen.setdefault(digram, []).append(symbol)
        for digram, occurrences in seen.items():
            for i, first in enumerate(occurrences):
                for second in occurrences[i + 1 :]:
                    overlapping = first.next is second or second.next is first
                    assert overlapping, (
                        f"digram uniqueness violated: {digram} occurs at two "
                        "non-overlapping positions"
                    )
        refs: dict[int, int] = {}
        for rule in self._rules.values():
            for symbol in rule.symbols():
                if symbol.is_nonterminal():
                    refs[symbol.rule.rule_id] = refs.get(symbol.rule.rule_id, 0) + 1
        for rule in self._rules.values():
            if rule is self._root:
                continue
            uses = refs.get(rule.rule_id, 0)
            assert uses >= 2, f"rule utility violated: R{rule.rule_id} used {uses}x"
            assert uses == rule.refcount, (
                f"refcount drift on R{rule.rule_id}: counted {uses}, "
                f"stored {rule.refcount}"
            )

    # -- internals ----------------------------------------------------------

    def _new_rule(self) -> _Rule:
        rule = _Rule(self, self._next_rule_id)
        self._rules[rule.rule_id] = rule
        self._next_rule_id += 1
        return rule

    def _drop_rule(self, rule: _Rule) -> None:
        self._rules.pop(rule.rule_id, None)
