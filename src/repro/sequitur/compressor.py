"""TADOC compression pipeline: files -> dictionary -> Sequitur -> corpus."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.core.grammar import RULE_BASE, SEP_BASE, CompressedCorpus
from repro.errors import GrammarError
from repro.sequitur.dictionary import Dictionary, tokenize
from repro.sequitur.sequitur import Sequitur


class TadocCompressor:
    """Compress a multi-file text corpus into a :class:`CompressedCorpus`.

    The pipeline is the one Section II describes: dictionary-encode every
    word, stream the ids through Sequitur, and insert one *unique*
    segmentation symbol per file boundary.  Unique separators can never
    repeat, so Sequitur leaves them in the root rule -- which is what lets
    per-file analytics find document boundaries without decompression.
    """

    def __init__(
        self,
        dictionary: Dictionary | None = None,
        token_mode: str = "words",
    ) -> None:
        #: Word dictionary; pass a shared one to keep word ids stable
        #: across separately-compressed chunks (streaming ingestion).
        self.dictionary = dictionary if dictionary is not None else Dictionary()
        #: Tokenizer granularity: "words" or "chars" (for languages
        #: without whitespace word boundaries).
        self.token_mode = token_mode
        self._sequitur = Sequitur()
        self._file_names: list[str] = []
        self._frozen = False

    def add_file(self, name: str, text: str) -> None:
        """Feed one file into the grammar.

        Raises:
            GrammarError: if called after :meth:`freeze`.
        """
        if self._frozen:
            raise GrammarError("compressor already frozen")
        file_index = len(self._file_names)
        self._file_names.append(name)
        for word_id in self.dictionary.encode(tokenize(text, self.token_mode)):
            self._sequitur.push(word_id)
        self._sequitur.push(SEP_BASE + file_index)

    def freeze(self) -> CompressedCorpus:
        """Finalize the grammar and return the immutable corpus."""
        self._frozen = True
        if len(self.dictionary) >= SEP_BASE:
            raise GrammarError("vocabulary exceeds the word id space")
        bodies = self._sequitur.freeze()
        rules: list[list[int]] = []
        for body in bodies:
            encoded: list[int] = []
            for symbol in body:
                if isinstance(symbol, tuple):  # ("R", index)
                    encoded.append(RULE_BASE + symbol[1])
                else:
                    encoded.append(symbol)
            rules.append(encoded)
        corpus = CompressedCorpus(
            rules=rules,
            vocab=self.dictionary.words(),
            file_names=list(self._file_names),
            token_mode=self.token_mode,
        )
        corpus.validate()
        return corpus


def compress_files(
    files: Iterable[tuple[str, str]],
    token_mode: str = "words",
) -> CompressedCorpus:
    """Compress ``(name, text)`` pairs into a corpus in one call."""
    compressor = TadocCompressor(token_mode=token_mode)
    for name, text in files:
        compressor.add_file(name, text)
    return compressor.freeze()


def compress_paths(paths: Iterable[str | Path]) -> CompressedCorpus:
    """Compress files read from disk."""
    return compress_files(
        (str(path), Path(path).read_text(encoding="utf-8")) for path in paths
    )
