"""Sequitur grammar inference and the TADOC compression pipeline.

TADOC (the system N-TADOC builds on) extends Sequitur
[Nevill-Manning & Witten 1997] to convert dictionary-encoded text into a
context-free grammar whose rules capture repeated word patterns.  This
subpackage provides:

* :class:`~repro.sequitur.sequitur.Sequitur` -- the linear-time grammar
  inference algorithm (digram uniqueness + rule utility invariants).
* :class:`~repro.sequitur.dictionary.Dictionary` -- word <-> id encoding.
* :class:`~repro.sequitur.compressor.TadocCompressor` -- multi-file
  corpus -> :class:`~repro.core.grammar.CompressedCorpus`, inserting one
  unique segmentation symbol per file boundary so per-file analytics can
  locate documents inside the root rule.
* :mod:`~repro.sequitur.serialization` -- the varint on-disk format.
"""

from repro.sequitur.compressor import TadocCompressor, compress_files
from repro.sequitur.dictionary import Dictionary, tokenize
from repro.sequitur.sequitur import Sequitur

__all__ = [
    "Dictionary",
    "Sequitur",
    "TadocCompressor",
    "compress_files",
    "tokenize",
]
