"""Load real text corpora from the filesystem.

The synthetic profiles stand in for the paper's datasets, but the
library is equally usable on your own text: point the loader at a
directory (or glob) of files and get a compressed corpus back.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.core.grammar import CompressedCorpus
from repro.errors import ReproError
from repro.sequitur.compressor import compress_files


def iter_text_files(
    root: str | Path,
    pattern: str = "**/*.txt",
    max_bytes_per_file: int | None = None,
) -> Iterable[tuple[str, str]]:
    """Yield ``(relative_name, text)`` for files under ``root``.

    Files are yielded in sorted path order (deterministic corpora).
    Undecodable files are skipped; oversized files are truncated at the
    last whitespace before ``max_bytes_per_file``.
    """
    root = Path(root)
    for path in sorted(root.glob(pattern)):
        if not path.is_file():
            continue
        try:
            text = path.read_text(encoding="utf-8")
        except UnicodeDecodeError:
            continue
        if max_bytes_per_file is not None and len(text) > max_bytes_per_file:
            cut = text.rfind(" ", 0, max_bytes_per_file)
            text = text[: cut if cut > 0 else max_bytes_per_file]
        yield str(path.relative_to(root)), text


def load_directory(
    root: str | Path,
    pattern: str = "**/*.txt",
    max_files: int | None = None,
    max_bytes_per_file: int | None = None,
    token_mode: str = "words",
) -> CompressedCorpus:
    """Compress every matching file under ``root`` into one corpus.

    Raises:
        ReproError: if no files match.
    """
    files = []
    for name, text in iter_text_files(root, pattern, max_bytes_per_file):
        files.append((name, text))
        if max_files is not None and len(files) >= max_files:
            break
    if not files:
        raise ReproError(f"no files matching {pattern!r} under {root}")
    return compress_files(files, token_mode=token_mode)
