"""Deterministic synthetic text generation with tunable redundancy.

Real text compresses well under grammar compression because it repeats
*phrases*, not independent words.  The generator therefore builds a pool
of multi-word phrases over a Zipfian vocabulary and composes documents as
Zipf-weighted phrase sequences with a configurable rate of fresh "noise"
words.  High phrase reuse -> deep grammars and strong compression (like
the paper's 90.8% savings); high noise -> shallow grammars.

Everything is seeded: the same spec always yields the same corpus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


def _zipf_weights(n: int, exponent: float) -> list[float]:
    """Unnormalized Zipf rank weights 1/r^s for ranks 1..n."""
    return [1.0 / (rank**exponent) for rank in range(1, n + 1)]


def _make_word(index: int) -> str:
    """Deterministic pronounceable word for vocabulary index ``index``."""
    consonants = "bcdfghjklmnpqrstvwz"
    vowels = "aeiou"
    parts = []
    value = index
    while True:
        parts.append(consonants[value % len(consonants)])
        parts.append(vowels[(value // len(consonants)) % len(vowels)])
        value //= len(consonants) * len(vowels)
        if value == 0:
            break
    return "".join(parts) + str(index % 7)


@dataclass(frozen=True)
class CorpusSpec:
    """Parameters for one synthetic corpus.

    Attributes:
        n_files: Number of documents.
        tokens_per_file: Mean document length in words.
        vocab_size: Size of the underlying word population.
        phrase_pool: Number of reusable phrases.
        phrase_len: Mean words per phrase.
        templates: Number of long template passages.  Documents copy
            aligned windows out of templates, which is what gives real
            corpora (boilerplate abstracts, wiki markup) their long-span
            redundancy; 0 disables template reuse.
        template_len: Tokens per template passage.
        window: Alignment quantum for template windows; copies of the
            same window repeat *exactly* across documents.
        reuse: Probability that the next chunk of a document is a
            template window (vs. fresh phrase material).
        noise: Fraction of tokens that are uniform-random vocabulary
            words appended between chunks.  Noise words are incompressible
            and supply the rare-word tail (Heaps' law) that dominates real
            vocabulary sizes; they never break template-window repeats.
        zipf_exponent: Skew of word/phrase/template popularity.
        seed: RNG seed.
    """

    n_files: int
    tokens_per_file: int
    vocab_size: int
    phrase_pool: int = 500
    phrase_len: int = 6
    templates: int = 40
    template_len: int = 480
    window: int = 60
    reuse: float = 0.82
    noise: float = 0.08
    zipf_exponent: float = 1.05
    seed: int = 2024

    def total_tokens(self) -> int:
        """Approximate corpus size in words."""
        return self.n_files * self.tokens_per_file


def generate_corpus_files(spec: CorpusSpec) -> list[tuple[str, str]]:
    """Generate ``(file_name, text)`` pairs for a spec."""
    rng = random.Random(spec.seed)
    vocabulary = [_make_word(i) for i in range(spec.vocab_size)]
    word_weights = _zipf_weights(spec.vocab_size, spec.zipf_exponent)

    phrases: list[list[str]] = []
    for _ in range(spec.phrase_pool):
        length = max(2, int(rng.gauss(spec.phrase_len, spec.phrase_len / 3)))
        phrases.append(rng.choices(vocabulary, weights=word_weights, k=length))
    phrase_weights = _zipf_weights(spec.phrase_pool, spec.zipf_exponent)

    templates: list[list[str]] = []
    for _ in range(spec.templates):
        passage: list[str] = []
        while len(passage) < spec.template_len:
            passage.extend(rng.choices(phrases, weights=phrase_weights, k=1)[0])
        templates.append(passage[: spec.template_len])
    template_weights = _zipf_weights(max(spec.templates, 1), spec.zipf_exponent)

    files: list[tuple[str, str]] = []
    for file_index in range(spec.n_files):
        target = max(
            4, int(rng.gauss(spec.tokens_per_file, spec.tokens_per_file / 4))
        )
        words: list[str] = []
        while len(words) < target:
            before = len(words)
            if templates and rng.random() < spec.reuse:
                # Copy an aligned template window; alignment makes copies
                # of the same window byte-identical across documents.
                passage = rng.choices(templates, weights=template_weights, k=1)[0]
                slots = max(1, len(passage) // spec.window)
                start = rng.randrange(slots) * spec.window
                length = spec.window * rng.randint(1, 3)
                words.extend(passage[start : start + length])
            else:
                words.extend(rng.choices(phrases, weights=phrase_weights, k=1)[0])
            # Sprinkle uniform-random noise words after the chunk (they
            # supply the rare-word vocabulary tail without breaking the
            # chunk's exact repeats).
            if spec.noise > 0:
                chunk_len = len(words) - before
                expected = chunk_len * spec.noise / (1.0 - spec.noise)
                n_noise = int(expected) + (1 if rng.random() < expected % 1 else 0)
                for _ in range(n_noise):
                    words.append(rng.choice(vocabulary))
        files.append((f"doc_{file_index:05d}.txt", " ".join(words[:target])))
    return files
