"""Dataset profiles A-D mirroring Table I's structure at laptop scale.

=========  ======================  =========================================
Profile    Paper source            Structural character preserved
=========  ======================  =========================================
A          Yelp COVID-19 reviews   a single file, modest vocabulary
B          NSFRAA abstracts        a swarm of very small files (the
                                   many-file regime that breaks top-down
                                   per-file traversal, Section VI-E)
C          4 Wikipedia documents   a handful of large, redundant files
D          large Wikipedia dump    the biggest corpus: more files, more
                                   rules, larger vocabulary than C
=========  ======================  =========================================

Compressed corpora are cached in-process and (optionally) on disk under
``.cache/`` because Sequitur inference is the expensive step.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.grammar import CompressedCorpus
from repro.datasets.generator import CorpusSpec, generate_corpus_files
from repro.sequitur import serialization
from repro.sequitur.compressor import compress_files


@dataclass(frozen=True)
class DatasetProfile:
    """A named dataset configuration."""

    name: str
    description: str
    spec: CorpusSpec


PROFILES: dict[str, DatasetProfile] = {
    "A": DatasetProfile(
        name="A",
        description="Yelp COVID-19 analog: one file, modest vocabulary",
        spec=CorpusSpec(
            n_files=1,
            tokens_per_file=24_000,
            vocab_size=2_400,
            phrase_pool=700,
            templates=10,
            template_len=600,
            window=120,
            reuse=0.94,
            zipf_exponent=1.3,
            noise=0.02,
            seed=101,
        ),
    ),
    "B": DatasetProfile(
        name="B",
        description="NSFRAA analog: many small files",
        spec=CorpusSpec(
            n_files=1000,
            tokens_per_file=55,
            vocab_size=2_000,
            phrase_pool=450,
            templates=10,
            template_len=240,
            window=30,
            reuse=0.94,
            zipf_exponent=1.3,
            noise=0.02,
            seed=202,
        ),
    ),
    "C": DatasetProfile(
        name="C",
        description="Wikipedia analog: four large redundant documents",
        spec=CorpusSpec(
            n_files=4,
            tokens_per_file=14_000,
            vocab_size=6_000,
            phrase_pool=1_200,
            templates=12,
            template_len=700,
            window=100,
            reuse=0.93,
            zipf_exponent=1.3,
            noise=0.02,
            seed=303,
        ),
    ),
    "D": DatasetProfile(
        name="D",
        description="large Wikipedia analog: the biggest corpus",
        spec=CorpusSpec(
            n_files=24,
            tokens_per_file=5_200,
            vocab_size=11_000,
            phrase_pool=2_400,
            templates=20,
            template_len=700,
            window=100,
            reuse=0.93,
            zipf_exponent=1.3,
            noise=0.02,
            seed=404,
        ),
    ),
}

_corpus_cache: dict[tuple[str, float], CompressedCorpus] = {}


def _scaled_spec(spec: CorpusSpec, scale: float) -> CorpusSpec:
    """Scale a spec's volume knobs while keeping its structural character."""
    if scale == 1.0:
        return spec
    n_files = max(1, round(spec.n_files * (scale if spec.n_files > 8 else 1.0)))
    tokens = max(8, round(spec.tokens_per_file * (scale if spec.n_files <= 8 else 1.0)))
    return CorpusSpec(
        n_files=n_files,
        tokens_per_file=tokens,
        vocab_size=max(50, round(spec.vocab_size * min(1.0, scale * 1.5))),
        phrase_pool=max(20, round(spec.phrase_pool * min(1.0, scale * 1.5))),
        phrase_len=spec.phrase_len,
        templates=spec.templates,
        template_len=spec.template_len,
        window=spec.window,
        reuse=spec.reuse,
        noise=spec.noise,
        zipf_exponent=spec.zipf_exponent,
        seed=spec.seed,
    )


def dataset_files(name: str, scale: float = 1.0) -> list[tuple[str, str]]:
    """Generate the raw ``(file_name, text)`` pairs for a profile."""
    profile = PROFILES[name]
    return generate_corpus_files(_scaled_spec(profile.spec, scale))


def corpus_for(
    name: str,
    scale: float = 1.0,
    cache_dir: str | Path | None = None,
) -> CompressedCorpus:
    """Compressed corpus for a profile (memoized; optionally disk-cached).

    Args:
        name: Profile name "A".."D".
        scale: Volume multiplier (1.0 = the calibrated laptop scale).
        cache_dir: Directory for on-disk corpus caching; skips Sequitur
            on reload.  In-process memoization applies regardless.
    """
    key = (name, scale)
    if key in _corpus_cache:
        return _corpus_cache[key]
    path = None
    if cache_dir is not None:
        path = Path(cache_dir) / f"corpus_{name}_{scale:g}.ntdc"
        if path.exists():
            corpus = serialization.load(path)
            _corpus_cache[key] = corpus
            return corpus
    corpus = compress_files(dataset_files(name, scale))
    if path is not None:
        path.parent.mkdir(parents=True, exist_ok=True)
        serialization.save(corpus, path)
    _corpus_cache[key] = corpus
    return corpus
