"""Synthetic dataset generators standing in for the paper's corpora.

The paper evaluates on Yelp COVID-19 reviews (A), NSF Research Award
Abstracts (B), and two Wikipedia dumps (C, D) -- none of which ship with
this repository.  The generators reproduce the *structural* properties
Table I documents (one big file vs. a swarm of small files vs. few huge
files; vocabulary-to-rule ratios; repetitive phrase structure that
grammar compression exploits), scaled to laptop size with an explicit
``scale`` knob.
"""

from repro.datasets.generator import CorpusSpec, generate_corpus_files
from repro.datasets.loader import iter_text_files, load_directory
from repro.datasets.profiles import (
    PROFILES,
    DatasetProfile,
    corpus_for,
    dataset_files,
)

__all__ = [
    "CorpusSpec",
    "DatasetProfile",
    "PROFILES",
    "corpus_for",
    "dataset_files",
    "generate_corpus_files",
    "iter_text_files",
    "load_directory",
]
