"""A tour of the simulated storage substrate.

Walks through the mechanisms that make the reproduction's numbers move:
device cost tables, cache locality, access amplification, persistence
cost, trace replay across architectures, and wear accounting.  Useful
for understanding *why* the figure benchmarks behave as they do.

Run with::

    python examples/cost_model_tour.py
"""

from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory
from repro.nvm.trace import record_trace, replay_trace
from repro.nvm.wear import wear_report


def show(title: str) -> None:
    print(f"\n=== {title} ===")


def main() -> None:
    show("1. device profiles")
    header = f"{'device':8s} {'line':>6s} {'read':>9s} {'write':>9s} {'flush':>9s}"
    print(header)
    for name in ("dram", "reram", "nvm", "pcm", "ssd", "hdd"):
        p = DeviceProfile.by_name(name)
        print(
            f"{p.name:8s} {p.line_size:5d}B {p.read_ns:7.0f}ns "
            f"{p.write_ns:7.0f}ns {p.flush_ns:7.0f}ns"
        )

    show("2. locality is performance (the pruning-method rationale)")
    nvm = DeviceProfile.nvm()
    packed = SimulatedMemory(nvm, 1 << 20, cache_bytes=1 << 12)
    for i in range(256):
        packed.read(i * 8, 8)  # 256 objects packed on 8 lines
    scattered = SimulatedMemory(nvm, 1 << 20, cache_bytes=1 << 12)
    for i in range(256):
        scattered.read((i * 4099) % ((1 << 20) - 8), 8)  # one line each
    print(f"256 packed 8-byte reads   : {packed.clock.ns:9.0f} ns")
    print(f"256 scattered 8-byte reads: {scattered.clock.ns:9.0f} ns "
          f"({scattered.clock.ns / packed.clock.ns:.0f}x)")

    show("3. persistence is not free (phase vs operation level)")
    lazy = SimulatedMemory(nvm, 1 << 20)
    for i in range(512):
        lazy.write(i * 64, b"x" * 64)
    lazy.flush()
    eager = SimulatedMemory(nvm, 1 << 20)
    for i in range(512):
        eager.write(i * 64, b"x" * 64)
        eager.flush()  # per-operation durability
    print(f"512 writes, flush once     : {lazy.clock.ns:9.0f} ns")
    print(f"512 writes, flush each time: {eager.clock.ns:9.0f} ns "
          f"({eager.clock.ns / lazy.clock.ns:.1f}x)")

    show("4. trace replay across architectures (the migration method)")
    source = SimulatedMemory(nvm, 1 << 20)
    with record_trace(source) as trace:
        for i in range(200):
            source.write((i * 2053) % ((1 << 20) - 64), b"y" * 64)
        for i in range(400):
            source.read((i * 4099) % ((1 << 20) - 64), 64)
        source.flush()
    print(f"captured {len(trace)} events "
          f"({trace.bytes_read} B read, {trace.bytes_written} B written)")
    for name in ("dram", "reram", "nvm", "pcm"):
        replayed = replay_trace(trace, DeviceProfile.by_name(name))
        print(f"  replayed on {name:6s}: {replayed.ns:9.0f} ns")

    show("5. endurance accounting (Section VII)")
    worn = SimulatedMemory(nvm, 1 << 20, track_wear=True)
    for round_number in range(50):
        worn.write(0, bytes([round_number]) * 256)     # hot line
        worn.write(4096 + round_number * 256, b"z" * 256)  # spread lines
        worn.flush()
    report = wear_report(worn)
    print(f"programs={report.total_programs}, cells={report.lines_touched}, "
          f"hottest cell={report.max_line_programs} programs "
          f"(imbalance {report.imbalance:.1f}x)")
    print(f"hottest cell used {report.lifetime_fraction_used() * 100:.4f}% "
          f"of a 10^7-cycle endurance budget")


if __name__ == "__main__":
    main()
