"""Data-mining scenario: a small search engine over compressed documents.

Builds the paper's inverted-index and ranked-inverted-index structures
directly on a compressed Wikipedia-like corpus (the Section III-C "data
mining" application: "the ability to perform fast searches and build
indexes directly on compressed text stored in NVM"), then answers
word and phrase queries.

Run with::

    python examples/search_engine.py
"""

from repro import EngineConfig, NTadocEngine
from repro.analytics.inverted_index import InvertedIndex
from repro.analytics.ranked_inverted_index import RankedInvertedIndex
from repro.core.ngrams import pack_ngram
from repro.datasets import corpus_for
from repro.sequitur.dictionary import tokenize


def main() -> None:
    # The "C" profile mimics a handful of large, redundant web documents.
    corpus = corpus_for("C", scale=0.4)
    word_ids = {word: i for i, word in enumerate(corpus.vocab)}
    print(
        f"indexing {corpus.n_files} documents "
        f"({corpus.grammar_length()} grammar symbols, "
        f"{corpus.vocabulary_size} distinct words)"
    )

    engine = NTadocEngine(corpus, EngineConfig(device="nvm"))

    # Word -> documents.
    index_run = engine.run(InvertedIndex())
    index = index_run.result
    print(
        f"inverted index built in {index_run.total_ns / 1e6:.2f} simulated ms "
        f"({len(index)} postings)"
    )

    # Word-pair -> ranked documents.
    ranked_run = engine.run(RankedInvertedIndex())
    ranked = ranked_run.result
    print(
        f"ranked phrase index built in {ranked_run.total_ns / 1e6:.2f} "
        f"simulated ms ({len(ranked)} sequences)\n"
    )

    # Query 1: single word lookups.
    sample_words = corpus.vocab[:3]
    for word in sample_words:
        posting = index.get(word_ids[word], [])
        docs = ", ".join(corpus.file_names[d] for d in posting) or "(none)"
        print(f"search {word!r}: {docs}")

    # Query 2: the most document-discriminating phrase.
    def spread(posting):
        return max(c for _, c in posting) - min(c for _, c in posting)

    key, posting = max(
        ((k, p) for k, p in ranked.items() if len(p) > 1),
        key=lambda kv: spread(kv[1]),
    )
    phrase = " ".join(corpus.vocab[w] for w in ranked_run.ngram_names[key])
    print(f"\nmost discriminating phrase: {phrase!r}")
    for doc, count in posting:
        print(f"  {corpus.file_names[doc]}: {count} occurrences")

    # Query 3: phrase lookup from free text.
    query = " ".join(phrase.split()[:2])
    tokens = [word_ids[w] for w in tokenize(query) if w in word_ids]
    if len(tokens) == 2:
        posting = ranked.get(pack_ngram(tuple(tokens)), [])
        print(f"\nquery {query!r} ranked results:")
        for doc, count in posting[:3]:
            print(f"  {corpus.file_names[doc]} ({count} hits)")

    # Query 4: boolean queries, evaluated without any index at all.
    from repro.analytics.query import QueryEngine

    booleans = QueryEngine(corpus)
    words = corpus.vocab[:2]
    expression = f"{words[0]} AND NOT {words[1]}"
    matches = booleans.query_names(expression)
    print(f"\nboolean query {expression!r}: "
          f"{', '.join(matches) or '(no documents)'}")
    print(f"(resolved in {booleans.sim_ns_spent / 1e3:.1f} simulated us)")


if __name__ == "__main__":
    main()
