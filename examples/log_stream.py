"""Streaming scenario: nightly log batches, compressed on arrival.

The distributed-system application of Section III-C, in streaming form
(cf. CompressStreamDB from the paper's related work): batches of log
files arrive over time, each batch is compressed into its own chunk
against a shared dictionary, and analytics merge exactly across chunks
-- without ever decompressing earlier days.

Run with::

    python examples/log_stream.py
"""

from repro.analytics.word_count import WordCount, render_word_counts
from repro.analytics.sequence_count import SequenceCount, render_sequence_counts
from repro.core.streaming import StreamingCorpus
from repro.datasets.generator import CorpusSpec, generate_corpus_files


def nightly_batches(nights=4, files_per_night=6):
    """Synthetic log batches: heavy template reuse, like real service logs."""
    spec = CorpusSpec(
        n_files=nights * files_per_night,
        tokens_per_file=300,
        vocab_size=400,
        phrase_pool=80,
        templates=6,
        template_len=200,
        window=40,
        reuse=0.9,
        noise=0.02,
        seed=77,
    )
    files = generate_corpus_files(spec)
    for night in range(nights):
        yield files[night * files_per_night : (night + 1) * files_per_night]


def main() -> None:
    stream = StreamingCorpus()
    for night, batch in enumerate(nightly_batches(), start=1):
        chunk = stream.ingest(batch)
        tokens = sum(len(f) for f in chunk.expand_files())
        print(
            f"night {night}: ingested {chunk.n_files} files "
            f"({tokens} words -> {chunk.grammar_length()} grammar symbols)"
        )

        merged = stream.run(WordCount())
        counts = render_word_counts(merged.result, stream.vocab)
        top = sorted(counts.items(), key=lambda p: -p[1])[:3]
        summary = ", ".join(f"{w}={c}" for w, c in top)
        print(
            f"  running totals over {stream.n_files} files: {summary}  "
            f"({merged.total_ns / 1e6:.2f} simulated ms across "
            f"{len(merged.chunk_ns)} chunk(s))"
        )

    print("\nmost frequent word pairs across the whole stream:")
    merged = stream.run(SequenceCount())
    pairs = render_sequence_counts(merged.result, merged.ngram_names, stream.vocab)
    for ngram, count in sorted(pairs.items(), key=lambda p: -p[1])[:5]:
        print(f"  {' '.join(ngram):24s} {count}")


if __name__ == "__main__":
    main()
