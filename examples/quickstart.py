"""Quickstart: compress a corpus, analyse it without decompression.

Run with::

    python examples/quickstart.py
"""

from repro import EngineConfig, NTadocEngine, UncompressedEngine, compress_files
from repro.analytics.word_count import WordCount, render_word_counts

FILES = [
    (
        "monday_log.txt",
        "error connecting to database retrying error connecting to database "
        "retrying connection established request served request served",
    ),
    (
        "tuesday_log.txt",
        "request served request served error connecting to database retrying "
        "connection established request served",
    ),
    (
        "wednesday_log.txt",
        "connection established request served request served request served",
    ),
]


def main() -> None:
    # 1. Compress: dictionary-encode the words and infer a grammar whose
    #    rules capture the repeated phrases.  The corpus is immutable and
    #    serializable (repro.sequitur.serialization).
    corpus = compress_files(FILES)
    print("compressed corpus")
    print(f"  files:          {corpus.n_files}")
    print(f"  vocabulary:     {corpus.vocabulary_size} words")
    print(f"  grammar rules:  {corpus.n_rules}")
    tokens = sum(len(f) for f in corpus.expand_files())
    print(f"  grammar length: {corpus.grammar_length()} symbols "
          f"for {tokens} words")

    # 2. Analyse directly on the compressed form.  The engine builds the
    #    pruned DAG pool on a simulated NVM device and runs the task's
    #    graph traversal; no text is ever decompressed.
    engine = NTadocEngine(corpus, EngineConfig(device="nvm", persistence="phase"))
    run = engine.run(WordCount())
    counts = render_word_counts(run.result, corpus.vocab)
    print("\nword counts (from the compressed data)")
    for word, count in sorted(counts.items(), key=lambda p: -p[1])[:5]:
        print(f"  {word:12s} {count}")

    # 3. Compare against the uncompressed baseline: identical answers,
    #    different cost.
    baseline = UncompressedEngine(corpus, EngineConfig()).run(WordCount())
    assert baseline.result == run.result, "TADOC must be lossless"
    print("\nsimulated time (init + traversal)")
    print(f"  N-TADOC on NVM:      {run.total_ns:12,.0f} ns")
    print(f"  uncompressed on NVM: {baseline.total_ns:12,.0f} ns")
    print(f"  speedup:             {baseline.total_ns / run.total_ns:.2f}x")
    if baseline.total_ns < 1.2 * run.total_ns:
        print(
            "\n(no big win on a toy corpus: as the paper's Limitations "
            "section notes, small inputs\ncannot amortize NVM setup costs "
            "-- try examples/review_analytics.py for real scale)"
        )


if __name__ == "__main__":
    main()
