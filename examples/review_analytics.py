"""Review-analytics scenario: the Yelp-style single-file workload.

Mirrors the paper's dataset A use case: one large dump of short reviews,
analysed for vocabulary statistics (word count + sort) and per-document
term vectors, with a side-by-side cost comparison of every storage
platform in the paper's evaluation (DRAM, NVM, SSD, HDD, and the naive
NVM port).

Run with::

    python examples/review_analytics.py
"""

from repro import EngineConfig
from repro.analytics.sort_task import Sort, render_sorted_counts
from repro.analytics.term_vector import TermVector, render_term_vectors
from repro.datasets import corpus_for
from repro.harness.runner import run_system
from repro.harness.tables import format_table


def main() -> None:
    corpus = corpus_for("A", scale=0.4)
    tokens = sum(len(f) for f in corpus.expand_files())
    print(
        f"review dump: {tokens} words, {corpus.vocabulary_size} distinct, "
        f"compressed to {corpus.grammar_length()} grammar symbols"
    )

    # Vocabulary statistics straight off the compressed data.
    sort_run = run_system("ntadoc", corpus, Sort())
    alphabetical = render_sorted_counts(sort_run.result, corpus.vocab)
    print("\nfirst words alphabetically:")
    for word, count in alphabetical[:5]:
        print(f"  {word:12s} {count}")

    vector_run = run_system(
        "ntadoc", corpus, TermVector(), EngineConfig(term_vector_k=5)
    )
    vectors = render_term_vectors(
        vector_run.result, corpus.vocab, corpus.file_names
    )
    name, vector = next(iter(vectors.items()))
    print(f"\ntop words of {name}:")
    for word, count in vector:
        print(f"  {word:12s} {count}")

    # Platform shoot-out for the same task (Fig. 5/6/7 in miniature).
    systems = [
        ("tadoc_dram", "TADOC on DRAM (upper bound)"),
        ("ntadoc", "N-TADOC on NVM (phase-level)"),
        ("ntadoc_op", "N-TADOC on NVM (operation-level)"),
        ("uncompressed_nvm", "uncompressed scan on NVM"),
        ("ntadoc_ssd", "N-TADOC pipeline on SSD"),
        ("ntadoc_hdd", "N-TADOC pipeline on HDD"),
        ("naive_nvm", "naive TADOC port to NVM"),
    ]
    rows = []
    reference = None
    for system, label in systems:
        run = run_system(system, corpus, Sort())
        if reference is None:
            reference = run.total_ns
        rows.append(
            [
                label,
                f"{run.total_ns / 1e6:.3f}",
                f"{run.total_ns / reference:.2f}x",
                f"{run.dram_peak // 1024} KiB",
            ]
        )
    print()
    print(
        format_table(
            ["system", "sim ms", "vs DRAM TADOC", "DRAM peak"],
            rows,
            title="platform comparison (sort task)",
        )
    )


if __name__ == "__main__":
    main()
