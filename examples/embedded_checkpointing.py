"""Embedded-systems scenario: persistence, power failure, and recovery.

Section III-C motivates N-TADOC for IoT/embedded nodes under power
constraints; Section IV-E describes the two persistence levels.  This
example builds an analytics pool on simulated NVM, kills the power at the
worst moment, and shows both recovery paths:

* phase-level persistence: the completed initialization phase survives;
  the interrupted traversal phase is re-run from its checkpoint;
* operation-level persistence: an interrupted transaction is rolled back
  from the undo log.

Run with::

    python examples/embedded_checkpointing.py
"""

from repro import compress_files
from repro.core.dag import Dag
from repro.core.pruning import PrunedDag
from repro.core.recovery import recover_pool
from repro.core.summation import summate_all
from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory
from repro.nvm.persist import PhasePersistence, TransactionLog
from repro.nvm.pool import NvmPool

SENSOR_LOGS = [
    ("node_a.log", "temp ok temp ok temp high fan on temp ok temp ok"),
    ("node_b.log", "temp ok temp high fan on temp high fan on temp ok"),
    ("node_c.log", "temp ok temp ok temp ok temp ok temp high fan on"),
]


def main() -> None:
    corpus = compress_files(SENSOR_LOGS)
    dag = Dag(corpus)

    # --- Phase-level persistence -------------------------------------
    print("=== phase-level persistence ===")
    nvm = SimulatedMemory(DeviceProfile.nvm(), 1 << 20)
    pool = NvmPool(nvm)
    phases = PhasePersistence(pool)

    with phases.phase("initialization"):
        PrunedDag.build(pool, corpus, dag, bounds=summate_all(dag))
        pool.save_directory()
    print("initialization phase completed and flushed to NVM")

    # Power fails in the middle of the traversal phase.
    pruned = PrunedDag.attach(pool)
    pruned.set_weight(0, 1)  # traversal begins...
    print("power failure during traversal!")
    nvm.crash()

    report = recover_pool(nvm)
    print(f"recovered: last completed phase = {report.last_completed_phase!r}")
    print(f"resume from phase              = {report.resume_phase!r}")
    assert report.pruned is not None
    assert report.pruned.raw_body(0) == corpus.rules[0]
    print("the pruned DAG pool is intact; only the traversal is re-run\n")

    # --- Operation-level persistence ----------------------------------
    print("=== operation-level persistence ===")
    nvm2 = SimulatedMemory(DeviceProfile.nvm(), 1 << 20)
    pool2 = NvmPool(nvm2)
    PhasePersistence(pool2)
    counter_off = pool2.alloc_region("alert_counter", 8)
    nvm2.write(counter_off, (5).to_bytes(8, "little"))
    log = TransactionLog(pool2)
    pool2.flush()
    print("alert counter = 5 (durable)")

    tx = log.begin()
    tx.write(counter_off, (6).to_bytes(8, "little"))
    print("transaction in flight: counter -> 6 ... power failure!")
    nvm2.crash()

    report2 = recover_pool(nvm2)
    value = int.from_bytes(report2.pool.memory.read(counter_off, 8), "little")
    print(
        f"recovered: rolled back {report2.transactions_rolled_back} "
        f"transaction(s); counter = {value}"
    )
    assert value == 5

    # And a committed transaction survives the same failure.
    log2 = TransactionLog(report2.pool)
    with log2.transaction() as tx:
        tx.write(counter_off, (6).to_bytes(8, "little"))
    nvm2.crash()
    value = int.from_bytes(nvm2.read(counter_off, 8), "little")
    print(f"after a committed transaction + crash: counter = {value}")
    assert value == 6


if __name__ == "__main__":
    main()
