"""Tests for the traversal engines and n-gram walker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dag import Dag
from repro.core.grammar import is_separator
from repro.core.ngrams import (
    NgramWalker,
    combine_profiles,
    pack_ngram,
    scan_ngrams,
)
from repro.core.pruning import PrunedDag
from repro.core.summation import head_tail_lists, summate_all
from repro.core.traversal import (
    compute_wordlists_bottomup,
    full_sweep_weights_for_segment,
    local_weights_for_segment,
    merge_segment_counts,
    propagate_weights_topdown,
)
from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory
from repro.nvm.pool import NvmPool
from repro.sequitur.compressor import compress_files


def setup(files, ngram_n=2):
    corpus = compress_files(files)
    dag = Dag(corpus)
    bounds = summate_all(dag)
    heads, tails = head_tail_lists(dag, max(ngram_n - 1, 1))
    pool = NvmPool(SimulatedMemory(DeviceProfile.nvm(), 1 << 22))
    pruned = PrunedDag.build(
        pool, corpus, dag,
        bounds=bounds, headtail_k=max(ngram_n - 1, 1),
        heads=heads, tails=tails,
    )
    return corpus, dag, pruned, pool


class TestTopDownWeights:
    def test_matches_python_dag_weights(self):
        corpus, dag, pruned, pool = setup(
            [("f", "m n o m n o p q m n o p q m n " * 6)]
        )
        propagate_weights_topdown(pruned, pool.allocator)
        expected = dag.weights()
        for rule in range(corpus.n_rules):
            assert pruned.weight(rule) == expected[rule]

    def test_total_word_mass_equals_token_count(self):
        files = [("f1", "a b c a b c a b"), ("f2", "c a b c")]
        corpus, dag, pruned, pool = setup(files)
        propagate_weights_topdown(pruned, pool.allocator)
        total = 0
        for rule in range(corpus.n_rules):
            weight = pruned.weight(rule)
            for _word, freq in pruned.words(rule):
                total += weight * freq
        tokens = sum(len(f) for f in corpus.expand_files())
        assert total == tokens

    def test_rerun_is_idempotent(self):
        corpus, dag, pruned, pool = setup([("f", "x y x y x y x y")])
        propagate_weights_topdown(pruned, pool.allocator)
        first = [pruned.weight(r) for r in range(corpus.n_rules)]
        propagate_weights_topdown(pruned, pool.allocator)
        assert [pruned.weight(r) for r in range(corpus.n_rules)] == first


class TestSegmentWeights:
    def files(self):
        return [
            ("f1", "a b c d a b c d e f"),
            ("f2", "e f g h a b c d"),
            ("f3", "g h g h e f"),
        ]

    def segments(self, corpus, pruned):
        body = pruned.raw_body(0)
        segments, current = [], []
        for symbol in body:
            if is_separator(symbol):
                segments.append(current)
                current = []
            else:
                current.append(symbol)
        return segments

    def test_local_matches_full_sweep(self):
        corpus, dag, pruned, pool = setup(self.files())
        topo = dag.topological_order()
        position = [0] * corpus.n_rules
        for i, rule in enumerate(topo):
            position[rule] = i
        for segment in self.segments(corpus, pruned):
            local = local_weights_for_segment(pruned, segment, position)
            full = full_sweep_weights_for_segment(pruned, segment, topo)
            assert local == full

    def test_segment_weights_sum_to_global(self):
        corpus, dag, pruned, pool = setup(self.files())
        topo = dag.topological_order()
        position = [0] * corpus.n_rules
        for i, rule in enumerate(topo):
            position[rule] = i
        combined: dict[int, int] = {}
        for segment in self.segments(corpus, pruned):
            for rule, weight in local_weights_for_segment(
                pruned, segment, position
            ).items():
                combined[rule] = combined.get(rule, 0) + weight
        global_weights = dag.weights()
        for rule in range(1, corpus.n_rules):
            assert combined.get(rule, 0) == global_weights[rule]


class TestBottomUpWordlists:
    def test_root_wordlist_is_global_word_count(self):
        files = [("f1", "a b c a b c a"), ("f2", "b c a b")]
        corpus, dag, pruned, pool = setup(files)
        tables = compute_wordlists_bottomup(
            pruned, pool.allocator, dag.reverse_topological_order()
        )
        expected: dict[int, int] = {}
        for tokens in corpus.expand_files():
            for token in tokens:
                expected[token] = expected.get(token, 0) + 1
        assert tables[0].to_dict() == expected

    def test_rule_wordlist_matches_expansion(self):
        corpus, dag, pruned, pool = setup(
            [("f", "u v w u v w x y u v x y w u v " * 5)]
        )
        tables = compute_wordlists_bottomup(
            pruned, pool.allocator, dag.reverse_topological_order()
        )
        for rule in range(1, corpus.n_rules):
            expansion = corpus.expand_rule(rule)
            expected: dict[int, int] = {}
            for token in expansion:
                expected[token] = expected.get(token, 0) + 1
            assert tables[rule].to_dict() == expected

    def test_presized_tables_never_rehash(self):
        corpus, dag, pruned, pool = setup(
            [("f", "a b c d e f g h a b c d e f g h " * 10)]
        )
        tables = compute_wordlists_bottomup(
            pruned, pool.allocator, dag.reverse_topological_order()
        )
        assert all(t.reconstructions == 0 for t in tables)

    def test_growable_mode_rehashes(self):
        corpus, dag, pruned, pool = setup(
            [("f", " ".join(f"w{i}" for i in range(64)) + " a b " * 30)]
        )
        tables = compute_wordlists_bottomup(
            pruned, pool.allocator, dag.reverse_topological_order(),
            growable=True,
        )
        assert any(t.reconstructions > 0 for t in tables)

    def test_merge_segment_counts_per_file(self):
        files = [("f1", "a b c a b c"), ("f2", "c b a"), ("f3", "a a a b")]
        corpus, dag, pruned, pool = setup(files)
        tables = compute_wordlists_bottomup(
            pruned, pool.allocator, dag.reverse_topological_order()
        )
        body = pruned.raw_body(0)
        segments, current = [], []
        for symbol in body:
            if is_separator(symbol):
                segments.append(current)
                current = []
            else:
                current.append(symbol)
        clock = pool.memory.clock
        for segment, tokens in zip(segments, corpus.expand_files()):
            counts = merge_segment_counts(pruned, segment, tables, clock)
            expected: dict[int, int] = {}
            for token in tokens:
                expected[token] = expected.get(token, 0) + 1
            assert counts == expected


class TestNgramWalker:
    def test_pack_bigram_exact(self):
        assert pack_ngram((3, 5)) != pack_ngram((5, 3))
        assert pack_ngram((3, 5)) == (3 << 29) | 5

    def test_total_counts_match_scan(self):
        files = [("f1", "a b a b c a b a b c d"), ("f2", "c d a b a b")]
        corpus, dag, pruned, pool = setup(files, ngram_n=2)
        walker = NgramWalker(pruned, 2)
        profiles = walker.all_profiles()
        weights = dag.weights()
        totals = combine_profiles(profiles, weights)
        expected = scan_ngrams(corpus.expand_files(), 2)
        assert totals == expected

    def test_trigram_counts_match_scan(self):
        files = [("f", "p q r p q r p q r s p q r s t " * 4)]
        corpus, dag, pruned, pool = setup(files, ngram_n=3)
        walker = NgramWalker(pruned, 3)
        totals = combine_profiles(walker.all_profiles(), dag.weights())
        assert totals == scan_ngrams(corpus.expand_files(), 3)

    def test_no_ngrams_across_file_boundaries(self):
        files = [("f1", "a b"), ("f2", "b a")]
        corpus, dag, pruned, pool = setup(files, ngram_n=2)
        walker = NgramWalker(pruned, 2)
        totals = combine_profiles(walker.all_profiles(), dag.weights())
        # (b, b) would only arise across the boundary; it must not appear.
        assert pack_ngram((1, 1)) not in totals

    def test_requires_headtail(self):
        corpus = compress_files([("f", "a b a b")])
        dag = Dag(corpus)
        pool = NvmPool(SimulatedMemory(DeviceProfile.nvm(), 1 << 20))
        pruned = PrunedDag.build(pool, corpus, dag)
        with pytest.raises(ValueError):
            NgramWalker(pruned, 2)

    def test_n_too_large_for_headtail(self):
        corpus, dag, pruned, pool = setup([("f", "a b a b")], ngram_n=2)
        with pytest.raises(ValueError):
            NgramWalker(pruned, 4)  # k=1 stored, need k>=3

    def test_key_names_populated(self):
        corpus, dag, pruned, pool = setup([("f", "a b a b a b")], ngram_n=2)
        names: dict[int, tuple[int, ...]] = {}
        walker = NgramWalker(pruned, 2, key_names=names)
        combine_profiles(walker.all_profiles(), dag.weights())
        assert all(len(t) == 2 for t in names.values())


@settings(max_examples=40, deadline=None)
@given(
    texts=st.lists(
        st.lists(st.sampled_from("abc"), max_size=50).map(" ".join),
        min_size=1,
        max_size=4,
    ),
    n=st.integers(2, 3),
)
def test_property_compressed_ngrams_equal_scan(texts, n):
    """For any corpus the compressed n-gram totals equal the plain scan."""
    files = [(f"f{i}", t) for i, t in enumerate(texts)]
    corpus, dag, pruned, pool = setup(files, ngram_n=n)
    walker = NgramWalker(pruned, n)
    totals = combine_profiles(walker.all_profiles(), dag.weights())
    assert totals == scan_ngrams(corpus.expand_files(), n)
