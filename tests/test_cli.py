"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.sequitur import serialization


@pytest.fixture
def text_files(tmp_path):
    a = tmp_path / "a.txt"
    a.write_text("the quick brown fox the quick brown fox jumps")
    b = tmp_path / "b.txt"
    b.write_text("jumps over the lazy dog the lazy dog")
    return [a, b]


@pytest.fixture
def corpus_path(tmp_path, text_files):
    out = tmp_path / "corpus.ntdc"
    assert main(["compress", *map(str, text_files), "-o", str(out)]) == 0
    return out


class TestCompressDecompress:
    def test_compress_creates_corpus(self, corpus_path, capsys):
        assert corpus_path.exists()
        corpus = serialization.load(corpus_path)
        assert corpus.n_files == 2

    def test_roundtrip_through_decompress(self, tmp_path, corpus_path):
        outdir = tmp_path / "restored"
        assert main(["decompress", str(corpus_path), "-d", str(outdir)]) == 0
        restored = sorted(p.name for p in outdir.iterdir())
        assert restored == ["a.txt", "b.txt"]
        assert (outdir / "a.txt").read_text().strip() == (
            "the quick brown fox the quick brown fox jumps"
        )

    def test_compress_reports_sizes(self, tmp_path, text_files, capsys):
        out = tmp_path / "c.ntdc"
        main(["compress", *map(str, text_files), "-o", str(out)])
        captured = capsys.readouterr().out
        assert "compressed 2 file(s)" in captured
        assert "rules" in captured


class TestStats:
    def test_stats_output(self, corpus_path, capsys):
        assert main(["stats", str(corpus_path)]) == 0
        captured = capsys.readouterr().out
        assert "files            : 2" in captured
        assert "grammar length" in captured
        assert "DAG depth" in captured
        assert "rule length histogram" in captured


class TestDataset:
    def test_generate_profile(self, tmp_path, capsys):
        out = tmp_path / "b.ntdc"
        assert main(["dataset", "B", "--scale", "0.05", "-o", str(out)]) == 0
        corpus = serialization.load(out)
        assert corpus.n_files > 10

    def test_unknown_profile_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["dataset", "Z", "-o", str(tmp_path / "x.ntdc")])


class TestRun:
    @pytest.mark.parametrize(
        "task",
        [
            "word_count",
            "sort",
            "term_vector",
            "inverted_index",
            "sequence_count",
            "ranked_inverted_index",
        ],
    )
    def test_run_each_task(self, corpus_path, capsys, task):
        assert main(["run", task, str(corpus_path)]) == 0
        captured = capsys.readouterr().out
        assert f"task      : {task}" in captured
        assert "result rows" in captured

    def test_run_alternate_system(self, corpus_path, capsys):
        assert main(
            ["run", "word_count", str(corpus_path), "--system", "tadoc_dram"]
        ) == 0
        assert "tadoc_dram" in capsys.readouterr().out

    def test_run_pinned_traversal(self, corpus_path, capsys):
        assert main(
            ["run", "word_count", str(corpus_path), "--traversal", "bottomup"]
        ) == 0
        assert "bottomup traversal" in capsys.readouterr().out

    def test_unknown_task_rejected(self, corpus_path):
        with pytest.raises(SystemExit):
            main(["run", "frequency_hologram", str(corpus_path)])


class TestCompare:
    def test_compare_table(self, corpus_path, capsys):
        assert main(
            [
                "compare",
                "word_count",
                str(corpus_path),
                "--systems",
                "tadoc_dram",
                "ntadoc",
                "uncompressed_nvm",
            ]
        ) == 0
        captured = capsys.readouterr().out
        assert "speedup" in captured
        assert "ntadoc" in captured
        assert "uncompressed" in captured


class TestSearch:
    def test_search_finds_documents(self, corpus_path, capsys):
        assert main(["search", str(corpus_path), "fox", "dog"]) == 0
        captured = capsys.readouterr().out
        assert "fox: " in captured
        assert "dog: " in captured

    def test_search_unknown_word_reported(self, corpus_path, capsys):
        assert main(["search", str(corpus_path), "zebra"]) == 1
        assert "does not occur" in capsys.readouterr().out

    def test_search_mixed_known_unknown(self, corpus_path, capsys):
        assert main(["search", str(corpus_path), "zebra", "fox"]) == 0
        captured = capsys.readouterr().out
        assert "does not occur" in captured
        assert "fox: " in captured


class TestReproduce:
    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["reproduce", "fig99"])


class TestWear:
    def test_single_task_report(self, corpus_path, capsys):
        assert main(["wear", "word_count", str(corpus_path)]) == 0
        captured = capsys.readouterr().out
        assert "wear report for word_count" in captured
        assert "line programs" in captured
        assert "imbalance" in captured
        assert "hottest lines:" in captured
        assert "line     offset  programs" in captured

    def test_fused_plan_report(self, corpus_path, capsys):
        assert main(
            ["wear", "word_count,inverted_index", str(corpus_path), "--top", "3"]
        ) == 0
        captured = capsys.readouterr().out
        assert "wear report for word_count,inverted_index" in captured
        assert "top 3 hottest lines:" in captured

    def test_unknown_task_rejected(self, corpus_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["wear", "word_mangle", str(corpus_path)])
        assert exc.value.code == 2
        assert "unknown task(s): word_mangle" in capsys.readouterr().err


class TestFaultsweep:
    def test_smoke_sweep_writes_report(self, tmp_path, capsys):
        out = tmp_path / "faultsweep.json"
        assert main(
            ["faultsweep", "--smoke", "--out", str(out)]
        ) == 0
        captured = capsys.readouterr().out
        assert "media-fault points" in captured
        assert "0 silent wrong answer(s)" in captured
        assert "0 violation(s)" in captured
        import json

        report = json.loads(out.read_text())
        assert report["points_swept"] >= 200
        assert report["violations"] == []


class TestMetrics:
    def test_prom_exposition_and_journal_tail(self, corpus_path, capsys):
        assert main(
            ["metrics", str(corpus_path), "word_count", "--events", "3"]
        ) == 0
        captured = capsys.readouterr().out
        assert "# TYPE ntadoc_task_ns histogram" in captured
        assert "ntadoc_events_total" in captured
        assert "# run total:" in captured
        assert "# last 3 journal event(s):" in captured

    def test_json_snapshot_to_file(self, tmp_path, corpus_path, capsys):
        out = tmp_path / "metrics.json"
        assert main(
            [
                "metrics", str(corpus_path), "word_count,inverted_index",
                "--format", "json", "--out", str(out),
            ]
        ) == 0
        import json

        snapshot = json.loads(out.read_text())
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert any(
            name.startswith("ntadoc_task_ns") for name in snapshot["histograms"]
        )

    def test_unknown_task_rejected(self, corpus_path):
        with pytest.raises(SystemExit) as exc:
            main(["metrics", str(corpus_path), "word_mangle"])
        assert exc.value.code == 2


class TestBlackbox:
    def test_image_out_round_trips_through_blackbox(
        self, tmp_path, corpus_path, capsys
    ):
        image = tmp_path / "pool.img"
        assert main(
            ["metrics", str(corpus_path), "word_count", "--image-out", str(image)]
        ) == 0
        capsys.readouterr()
        assert image.exists()
        assert main(["blackbox", str(image)]) == 0
        captured = capsys.readouterr().out
        assert "last committed phase" in captured
        assert "task_complete" in captured

    def test_json_report(self, tmp_path, corpus_path, capsys):
        image = tmp_path / "pool.img"
        assert main(
            ["metrics", str(corpus_path), "word_count", "--image-out", str(image)]
        ) == 0
        capsys.readouterr()
        assert main(["blackbox", str(image), "--json", "--tail", "4"]) == 0
        import json

        report = json.loads(capsys.readouterr().out)
        assert report["present"]
        assert report["by_kind"].get("event", 0) > 0
        assert len(report["tail"]) <= 4

    def test_junk_image_exits_nonzero(self, tmp_path, capsys):
        junk = tmp_path / "junk.img"
        junk.write_bytes(b"definitely not a pool image")
        assert main(["blackbox", str(junk)]) == 1
        assert "no flight recorder found" in capsys.readouterr().err
