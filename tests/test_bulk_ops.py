"""Semantic equivalence of the pstruct bulk operations.

The bulk APIs (``PVector.extend/read_range/add_at``, ``PQueue.push_many/
pop_many``, ``PHashTable.insert_many/add_many/get_many``,
``FrequencyCounter.add_many``) exist to coalesce device traffic; they
must behave exactly like the per-element calls they replace -- same
contents, same lengths, same error conditions -- while charging *no
more* simulated time.  Each test drives the bulk and per-element paths
on separate pools and compares the observable results.
"""

import random

import pytest

from repro.errors import CapacityError
from repro.nvm.allocator import PoolAllocator
from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory
from repro.pstruct.pcounter import FrequencyCounter
from repro.pstruct.phashtable import PHashTable
from repro.pstruct.pqueue import PQueue
from repro.pstruct.pvector import PVector


def make_allocator(size=1 << 20):
    mem = SimulatedMemory(DeviceProfile.nvm(), size, cache_bytes=1 << 14)
    return PoolAllocator(mem, base=0, capacity=size)


class TestPVectorBulk:
    def test_extend_matches_appends(self):
        values = [random.Random(7).randrange(1 << 32) for _ in range(300)]
        bulk = PVector.create(make_allocator(), 512)
        bulk.extend(values)
        single = PVector.create(make_allocator(), 512)
        for v in values:
            single.append(v)
        assert bulk.to_list() == single.to_list() == values
        assert len(bulk) == len(single)

    def test_extend_charges_no_more_than_appends(self):
        values = list(range(400))
        alloc_bulk = make_allocator()
        bulk = PVector.create(alloc_bulk, 512)
        start = alloc_bulk.memory.clock.ns
        bulk.extend(values)
        bulk_ns = alloc_bulk.memory.clock.ns - start

        alloc_single = make_allocator()
        single = PVector.create(alloc_single, 512)
        start = alloc_single.memory.clock.ns
        for v in values:
            single.append(v)
        single_ns = alloc_single.memory.clock.ns - start
        assert bulk_ns < single_ns

    def test_extend_empty_is_noop(self):
        vec = PVector.create(make_allocator(), 8)
        vec.extend([])
        assert len(vec) == 0

    def test_extend_overflow_raises_when_fixed(self):
        vec = PVector.create(make_allocator(), 4)
        with pytest.raises(CapacityError):
            vec.extend([1, 2, 3, 4, 5])

    def test_extend_grows_growable(self):
        vec = PVector.create(make_allocator(), 4, growable=True)
        vec.extend(list(range(100)))
        assert vec.to_list() == list(range(100))
        assert vec.reconstructions > 0

    def test_read_range_matches_gets(self):
        vec = PVector.create(make_allocator(), 64, elem_size=8)
        vec.extend([i * (1 << 33) for i in range(50)])
        # read_range returns a typed sequence backed by one bulk read.
        assert list(vec.read_range(10, 25)) == [vec.get(i) for i in range(10, 35)]
        assert list(vec.read_range(0, 0)) == []

    def test_read_range_bounds_checked(self):
        vec = PVector.create(make_allocator(), 16)
        vec.extend([1, 2, 3])
        with pytest.raises(IndexError):
            vec.read_range(1, 3)  # past length
        with pytest.raises(IndexError):
            vec.read_range(0, -1)

    def test_iter_matches_contents(self):
        values = list(range(1500))  # spans multiple read chunks
        vec = PVector.create(make_allocator(), 2048)
        vec.extend(values)
        assert list(vec) == values

    def test_add_at_is_get_plus_set(self):
        a = PVector.create(make_allocator(), 8)
        a.extend([10, 20, 30])
        assert a.add_at(1, 5) == 25
        assert a.get(1) == 25

        b_alloc = make_allocator()
        b = PVector.create(b_alloc, 8)
        b.extend([10, 20, 30])
        start = b_alloc.memory.clock.ns
        b.set(1, b.get(1) + 5)
        rmw_ns = b_alloc.memory.clock.ns - start
        c_alloc = make_allocator()
        c = PVector.create(c_alloc, 8)
        c.extend([10, 20, 30])
        start = c_alloc.memory.clock.ns
        c.add_at(1, 5)
        assert c_alloc.memory.clock.ns - start == rmw_ns


class TestPQueueBulk:
    def test_push_many_pop_many_fifo(self):
        q = PQueue.create(make_allocator(), 100)
        q.push_many(range(60))
        assert q.pop_many(25) == list(range(25))
        assert q.pop_many(100) == list(range(25, 60))
        assert q.pop_many(5) == []
        assert q.is_empty()

    def test_wraparound_preserved(self):
        q = PQueue.create(make_allocator(), 10)
        q.push_many(range(8))
        assert q.pop_many(6) == list(range(6))
        q.push_many(range(100, 107))  # tail wraps past the slab end
        assert len(q) == 9
        assert q.pop_many(9) == [6, 7] + list(range(100, 107))

    def test_push_many_overflow_raises_and_leaves_queue_intact(self):
        q = PQueue.create(make_allocator(), 5)
        q.push_many([1, 2, 3])
        with pytest.raises(CapacityError):
            q.push_many([4, 5, 6])
        assert q.pop_many(10) == [1, 2, 3]

    def test_bulk_matches_singles(self):
        rng = random.Random(11)
        ops = [("push", rng.randrange(1 << 16)) if rng.random() < 0.6 else ("pop",)
               for _ in range(200)]
        bulk = PQueue.create(make_allocator(), 256)
        single = PQueue.create(make_allocator(), 256)
        pending: list[int] = []
        popped_bulk: list[int] = []
        popped_single: list[int] = []
        for op in ops:
            if op[0] == "push":
                pending.append(op[1])
            else:
                if pending:
                    bulk.push_many(pending)
                    for v in pending:
                        single.push(v)
                    pending.clear()
                popped_bulk.extend(bulk.pop_many(3))
                for _ in range(3):
                    if single.is_empty():
                        break
                    popped_single.append(single.pop())
        assert popped_bulk == popped_single
        assert bulk.pop_many(1000) == [
            single.pop() for _ in range(len(single))
        ]


class TestPHashTableBulk:
    def test_insert_many_matches_puts(self):
        rng = random.Random(3)
        pairs = [(rng.randrange(1 << 20), rng.randrange(1 << 30)) for _ in range(400)]
        bulk = PHashTable.create(make_allocator(), 600)
        inserted = bulk.insert_many(pairs)
        single = PHashTable.create(make_allocator(), 600)
        for k, v in pairs:
            single.put(k, v)
        assert bulk.to_dict() == single.to_dict()
        assert inserted == len(bulk) == len(single)

    def test_insert_many_duplicates_last_wins(self):
        table = PHashTable.create(make_allocator(), 16)
        assert table.insert_many([(1, 10), (2, 20), (1, 99)]) == 2
        assert table.get(1) == 99
        assert table.insert_many([]) == 0

    def test_add_many_presummed(self):
        table = PHashTable.create(make_allocator(), 16)
        table.add_many([(5, 1), (7, 2), (5, 3)])
        table.add_many([(5, 10)])
        assert table.get(5) == 14
        assert table.get(7) == 2

    def test_add_many_matches_adds_through_growth(self):
        rng = random.Random(17)
        pairs = [(rng.randrange(50), rng.randrange(9) + 1) for _ in range(500)]
        bulk = PHashTable.create(make_allocator(), 4, growable=True)
        bulk.add_many(pairs)
        single = PHashTable.create(make_allocator(), 4, growable=True)
        for k, d in pairs:
            single.add(k, d)
        assert bulk.to_dict() == single.to_dict()

    def test_get_many_returns_input_order(self):
        table = PHashTable.create(make_allocator(), 32)
        table.insert_many([(i, i * i) for i in range(10)])
        keys = [9, 0, 44, 3, 9]
        assert table.get_many(keys) == [81, 0, None, 9, 81]
        assert table.get_many(keys, default=-1)[2] == -1
        assert table.get_many([]) == []

    def test_bulk_cheaper_than_singles(self):
        pairs = [(i * 613, 1) for i in range(300)]
        bulk_alloc = make_allocator()
        bulk = PHashTable.create(bulk_alloc, 512)
        start = bulk_alloc.memory.clock.ns
        bulk.add_many(pairs)
        bulk_ns = bulk_alloc.memory.clock.ns - start

        single_alloc = make_allocator()
        single = PHashTable.create(single_alloc, 512)
        start = single_alloc.memory.clock.ns
        for k, d in pairs:
            single.add(k, d)
        single_ns = single_alloc.memory.clock.ns - start
        assert bulk_ns < single_ns


class TestFrequencyCounterBulk:
    @pytest.mark.parametrize("kind", ["dense", "sparse"])
    def test_add_many_matches_adds(self, kind):
        rng = random.Random(23)
        pairs = [(rng.randrange(64), rng.randrange(5) + 1) for _ in range(300)]
        if kind == "dense":
            bulk = FrequencyCounter.dense(make_allocator(), 64)
            single = FrequencyCounter.dense(make_allocator(), 64)
        else:
            bulk = FrequencyCounter.sparse(
                make_allocator(), expected_distinct=8, growable=True
            )
            single = FrequencyCounter.sparse(
                make_allocator(), expected_distinct=8, growable=True
            )
        bulk.add_many(pairs)
        for k, d in pairs:
            single.add(k, d)
        assert bulk.to_dict() == single.to_dict()

    def test_add_many_accepts_generator(self):
        counter = FrequencyCounter.dense(make_allocator(), 8)
        counter.add_many((k, 2) for k in [1, 1, 3])
        assert counter.to_dict() == {1: 4, 3: 2}
