"""Tests for the whole-program analysis layer behind nvmlint.

Covers the symbol table (qualified names, module naming), the
conservative call-graph resolution ladder, effect summaries
(flush/marker obligations, discharge, cycles), the taint engine
(sources, sinks, interprocedural parameter flows, sanitizers), engine
determinism (two runs, byte-identical), the full-tree wall-clock bound,
and the new CLI surface (``--rule``, ``--changed``, ``--ratchet``,
``--out``).
"""

import json
import subprocess
import textwrap
import time
from pathlib import Path

from repro.lint import lint_paths
from repro.lint.analysis import Project
from repro.lint.analysis.symbols import module_name_for
from repro.lint.cli import main as lint_main
from repro.lint.core import ModuleFile

REPO_ROOT = Path(__file__).resolve().parent.parent


def project_from(tmp_path, **files):
    """Build a Project over ``name -> source`` fixture modules."""
    modules = []
    for name, source in sorted(files.items()):
        path = tmp_path / f"{name}.py"
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        modules.append(ModuleFile(path, path.name, path.read_text()))
    return Project.build(modules)


class TestModuleNaming:
    def test_src_anchored(self):
        assert module_name_for("src/repro/nvm/persist.py") == (
            "repro.nvm.persist"
        )

    def test_repro_anchored(self):
        assert module_name_for("repro/core/engine.py") == "repro.core.engine"

    def test_bare_stem(self):
        assert module_name_for("mod.py") == "mod"

    def test_package_init_strips(self):
        assert module_name_for("src/repro/lint/__init__.py") == "repro.lint"


class TestSymbolTable:
    def test_functions_methods_and_module_pseudo(self, tmp_path):
        project = project_from(
            tmp_path,
            alpha="""
            def top(x):
                def inner(y):
                    return y
                return inner(x)

            class Store:
                def save(self, v):
                    return v
            """,
        )
        functions = project.symbols.functions
        assert "alpha.top" in functions
        assert "alpha.top.inner" in functions
        assert "alpha.Store.save" in functions
        assert "alpha.<module>" in functions
        assert functions["alpha.Store.save"].cls == "Store"
        assert functions["alpha.Store.save"].params == ("self", "v")
        assert project.symbols.methods[("alpha", "Store")]["save"] == (
            "alpha.Store.save"
        )

    def test_unique_by_name_rejects_generic_and_ambiguous(self, tmp_path):
        project = project_from(
            tmp_path,
            one="def distinctive_helper(x):\n    return x\n",
            two=(
                "def write(x):\n    return x\n"
                "def twice_defined(x):\n    return x\n"
            ),
            three="def twice_defined(x):\n    return x\n",
        )
        symbols = project.symbols
        assert symbols.unique_by_name("distinctive_helper") == (
            "one.distinctive_helper"
        )
        assert symbols.unique_by_name("write") is None  # generic blocklist
        assert symbols.unique_by_name("twice_defined") is None  # ambiguous
        assert symbols.unique_by_name("__init__") is None  # dunder


class TestCallGraph:
    def test_resolution_ladder(self, tmp_path):
        project = project_from(
            tmp_path,
            lib="""
            def exported(x):
                return x
            """,
            app="""
            from lib import exported

            def local(x):
                return x

            def caller(x):
                local(x)
                exported(x)
                obj.distinctive_method(x)
                obj.write(x)

            class Engine:
                def step(self):
                    return self.advance_state()

                def advance_state(self):
                    return 1
            """,
            other="""
            def distinctive_method(x):
                return x
            """,
        )
        sites = {
            s.name: s.callee
            for s in project.callgraph.callees_of("app.caller")
        }
        assert sites["local"] == "app.local"
        assert sites["exported"] == "lib.exported"
        assert sites["distinctive_method"] == "other.distinctive_method"
        assert sites["write"] is None  # generic: never unique-name resolved
        method_sites = {
            s.name: s.callee
            for s in project.callgraph.callees_of("app.Engine.step")
        }
        assert method_sites["advance_state"] == "app.Engine.advance_state"

    def test_reverse_edges(self, tmp_path):
        project = project_from(
            tmp_path,
            mod="""
            def helper(x):
                return x

            def a(x):
                return helper(x)

            def b(x):
                return helper(x)
            """,
        )
        callers = [c for c, _ in project.callgraph.callers_of("mod.helper")]
        assert callers == ["mod.a", "mod.b"]
        assert project.has_known_callers("mod.helper")
        assert not project.has_known_callers("mod.a")


class TestEffectSummaries:
    def test_discharged_marker_is_silent(self, tmp_path):
        project = project_from(
            tmp_path,
            mod="""
            def good(pool, pp):
                pool.flush()
                pp.complete_phase("x")
            """,
        )
        summary = project.effect_summary("mod.good")
        assert summary.flushes
        assert summary.obligations == ()

    def test_undischarged_marker_propagates_with_chain(self, tmp_path):
        project = project_from(
            tmp_path,
            mod="""
            def inner(mem, marker_off):
                mem.write_uint(marker_off, 1)

            def outer(mem, marker_off):
                inner(mem, marker_off)
            """,
        )
        (ob,) = project.effect_summary("mod.inner").obligations
        assert ob.kind == "marker_write"
        (chained,) = project.effect_summary("mod.outer").obligations
        assert chained.kind == "call"
        assert chained.origin == ob.origin
        assert "inner()" in chained.chain[0]

    def test_callee_flush_counts_as_barrier(self, tmp_path):
        project = project_from(
            tmp_path,
            mod="""
            def barrier(pool):
                pool.flush()

            def good(pool, pp):
                barrier(pool)
                pp.complete_phase("x")
            """,
        )
        assert project.effect_summary("mod.good").obligations == ()

    def test_cycle_cut_to_empty(self, tmp_path):
        project = project_from(
            tmp_path,
            mod="""
            def ping(x):
                return pong(x)

            def pong(x):
                return ping(x)
            """,
        )
        # No crash, no spurious effects.
        assert project.effect_summary("mod.ping").obligations == ()
        assert project.effect_summary("mod.pong").obligations == ()


class TestTaint:
    def test_param_to_sink_summary(self, tmp_path):
        project = project_from(
            tmp_path,
            mod="""
            def charge_io(clock, amount):
                clock.advance(amount)
            """,
        )
        summary = project.taint.summaries["mod.charge_io"]
        assert 1 in summary.param_sinks  # amount reaches advance()

    def test_entropy_flows_through_return(self, tmp_path):
        project = project_from(
            tmp_path,
            mod="""
            import time

            def now():
                return time.perf_counter()

            def bad(clock):
                clock.advance(now())
            """,
        )
        returns = project.taint.summaries["mod.now"].returns
        assert any(lb.kind == "entropy" for lb in returns)
        hits = project.taint.source_hits["mod.bad"]
        assert any(h.label.kind == "entropy" for h in hits)

    def test_sorted_sanitizes_order_taint(self, tmp_path):
        project = project_from(
            tmp_path,
            mod="""
            def clean(clock, keys):
                for key in sorted(set(keys)):
                    clock.advance(key)
            """,
        )
        assert "mod.clean" not in project.taint.source_hits

    def test_module_level_code_is_analyzed(self, tmp_path):
        project = project_from(
            tmp_path,
            mod="""
            import time

            t = time.perf_counter()
            clock.advance(t)
            """,
        )
        hits = project.taint.source_hits["mod.<module>"]
        assert any(h.label.kind == "entropy" for h in hits)


class TestDeterminismAndSpeed:
    def test_two_runs_byte_identical_and_fast(self):
        def run():
            start = time.perf_counter()
            result = lint_paths([REPO_ROOT / "src"])
            elapsed = time.perf_counter() - start
            payload = json.dumps(
                [f.as_dict() for f in result.findings], sort_keys=True
            )
            return payload, result, elapsed

        first, result_a, elapsed_a = run()
        second, result_b, elapsed_b = run()
        assert first == second
        assert result_a.files_checked == result_b.files_checked
        # The acceptance bound for a full-tree run is 15s in CI; keep
        # headroom locally so drift is caught before the gate.
        assert elapsed_a < 15 and elapsed_b < 15


class TestCliFlags:
    DIRTY = "import random\nx = random.random()\n"

    def test_rule_flag_selects(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("import random\nx = random.random()\nmem.poke(0, 1)\n")
        assert lint_main([str(target), "--rule", "ND001"]) == 1
        out = capsys.readouterr().out
        assert "ND001" in out and "ND003" not in out
        assert (
            lint_main([str(target), "--rule", "ND001", "--rule", "ND003"])
            == 1
        )
        out = capsys.readouterr().out
        assert "ND001" in out and "ND003" in out

    def test_out_writes_artifact(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(self.DIRTY)
        artifact = tmp_path / "report" / "lint.json"
        assert lint_main([str(target), "--out", str(artifact)]) == 1
        capsys.readouterr()
        payload = json.loads(artifact.read_text())
        assert payload["summary"]["findings"] == 1
        assert payload["findings"][0]["rule"] == "ND003"

    def test_ratchet_fails_on_stale_entry(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {"version": 1, "findings": ["mod.py::ND003::gone"]}
            )
        )
        args = [str(target), "--baseline", str(baseline)]
        assert lint_main(args) == 0  # stale entries tolerated without it
        assert lint_main(args + ["--ratchet"]) == 1
        err = capsys.readouterr().err
        assert "stale baseline entry" in err

    def test_changed_requires_git(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "mod.py").write_text("x = 1\n")
        assert lint_main(["--changed", "."]) == 2
        assert "git checkout" in capsys.readouterr().err

    def test_changed_scopes_to_git_diff(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        git = lambda *a: subprocess.run(  # noqa: E731
            ["git", *a], cwd=tmp_path, check=True, capture_output=True
        )
        git("init", "-q")
        git("config", "user.email", "lint@test")
        git("config", "user.name", "lint")
        clean = tmp_path / "clean.py"
        clean.write_text(self.DIRTY)  # committed: not "changed"
        git("add", "clean.py")
        git("commit", "-qm", "seed")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("x = 1\n")  # untracked but clean source
        assert lint_main(["--changed", "."]) == 0
        out = capsys.readouterr().out
        assert "1 file(s) clean" in out  # only dirty.py was linted
        dirty.write_text(self.DIRTY)
        assert lint_main(["--changed", "."]) == 1
        out = capsys.readouterr().out
        assert "dirty.py" in out and "clean.py" not in out
