"""Tests for the word-locate task (compressed pattern matching)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.locate import WordLocate
from repro.baselines.uncompressed import UncompressedEngine
from repro.core.dag import Dag
from repro.core.engine import EngineConfig, NTadocEngine
from repro.sequitur.compressor import compress_files

FILES = [
    ("f0", "needle in a haystack full of hay and one needle more"),
    ("f1", "no matches here at all"),
    ("f2", "needle"),
    ("f3", ""),
]


@pytest.fixture(scope="module")
def corpus():
    return compress_files(FILES)


def locate(corpus, word: str):
    word_id = corpus.vocab.index(word)
    explens = Dag(corpus).expansion_lengths()
    return NTadocEngine(corpus).run(WordLocate(word_id, explens))


class TestCompressedLocate:
    def test_matches_oracle(self, corpus):
        word_id = corpus.vocab.index("needle")
        expected = WordLocate.reference(corpus.expand_files(), word_id)
        assert locate(corpus, "needle").result == expected

    def test_positions_exact(self, corpus):
        result = locate(corpus, "needle").result
        assert result[0] == [0, 9]
        assert result[2] == [0]
        assert 1 not in result
        assert 3 not in result

    def test_word_everywhere(self, corpus):
        result = locate(corpus, "of").result
        assert result == {0: [5]}

    def test_uncompressed_matches(self, corpus):
        word_id = corpus.vocab.index("needle")
        explens = Dag(corpus).expansion_lengths()
        task = WordLocate(word_id, explens)
        nt = NTadocEngine(corpus).run(WordLocate(word_id, explens))
        base = UncompressedEngine(corpus, EngineConfig()).run(task)
        assert nt.result == base.result

    def test_rare_word_cheaper_than_common_word(self):
        """Skipping non-matching subrules makes rare-word locate cheap on
        a repetitive corpus."""
        body = "common words repeat endlessly " * 120
        corpus = compress_files([("f", body + "rare " + body)])
        rare = locate(corpus, "rare")
        common = locate(corpus, "common")
        assert rare.result[0] == [480]
        assert rare.traversal_ns < common.traversal_ns


@settings(max_examples=25, deadline=None)
@given(
    texts=st.lists(
        st.lists(st.sampled_from("abc"), max_size=60).map(" ".join),
        min_size=1,
        max_size=4,
    ),
    word_index=st.integers(0, 2),
)
def test_property_locate_matches_oracle(texts, word_index):
    files = [(f"f{i}", t) for i, t in enumerate(texts)]
    corpus = compress_files(files)
    if word_index >= len(corpus.vocab):
        return
    explens = Dag(corpus).expansion_lengths()
    run = NTadocEngine(corpus).run(WordLocate(word_index, explens))
    expected = WordLocate.reference(corpus.expand_files(), word_index)
    assert run.result == expected
