"""Tests for dictionary, compressor, corpus model, and serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grammar import (
    RULE_BASE,
    SEP_BASE,
    CompressedCorpus,
    is_rule_ref,
    is_separator,
    is_word,
    rule_index,
)
from repro.errors import CorruptDataError, GrammarError
from repro.sequitur import serialization
from repro.sequitur.compressor import TadocCompressor, compress_files
from repro.sequitur.dictionary import Dictionary, tokenize


class TestDictionary:
    def test_ids_dense_first_seen(self):
        d = Dictionary()
        assert d.add("apple") == 0
        assert d.add("banana") == 1
        assert d.add("apple") == 0
        assert len(d) == 2

    def test_roundtrip(self):
        d = Dictionary()
        d.encode(["x", "y", "z"])
        assert d.word_of(d.id_of("y")) == "y"

    def test_unknown_word_raises(self):
        with pytest.raises(KeyError):
            Dictionary().id_of("ghost")

    def test_bad_id_raises(self):
        with pytest.raises(IndexError):
            Dictionary().word_of(0)

    def test_contains(self):
        d = Dictionary()
        d.add("w")
        assert "w" in d
        assert "x" not in d

    def test_from_words_preserves_order(self):
        d = Dictionary.from_words(["c", "a", "b"])
        assert d.words() == ["c", "a", "b"]

    def test_tokenize_lowercases_and_splits(self):
        assert tokenize("The  QUICK\nfox") == ["the", "quick", "fox"]

    def test_tokenize_empty(self):
        assert tokenize("   \n\t ") == []


class TestSymbolSpace:
    def test_partitions_disjoint(self):
        assert is_word(0) and is_word(SEP_BASE - 1)
        assert is_separator(SEP_BASE) and is_separator(RULE_BASE - 1)
        assert is_rule_ref(RULE_BASE)
        assert not is_word(SEP_BASE)
        assert not is_separator(RULE_BASE)

    def test_rule_index(self):
        assert rule_index(RULE_BASE + 5) == 5
        with pytest.raises(GrammarError):
            rule_index(3)


class TestCompressor:
    def test_single_file_roundtrip(self):
        corpus = compress_files([("f", "a b a b a b a b")])
        assert corpus.expand_text() == ["a b a b a b a b"]
        assert corpus.n_files == 1

    def test_multi_file_roundtrip(self):
        files = [("f1", "hello world hello world"), ("f2", "world hello"), ("f3", "")]
        corpus = compress_files(files)
        assert corpus.expand_text() == ["hello world hello world", "world hello", ""]
        assert corpus.n_files == 3

    def test_file_boundaries_respected(self):
        """Repetition across files must not leak words between files."""
        files = [("f1", "x y z"), ("f2", "x y z"), ("f3", "x y z")]
        corpus = compress_files(files)
        assert corpus.expand_files() == [[0, 1, 2]] * 3

    def test_separators_only_in_root(self):
        files = [(f"f{i}", "common phrase here") for i in range(10)]
        corpus = compress_files(files)
        for body in corpus.rules[1:]:
            assert not any(is_separator(s) for s in body)

    def test_compression_reduces_grammar_size(self):
        text = "some repeated boilerplate text fragment " * 100
        corpus = compress_files([("f", text)])
        assert corpus.grammar_length() < 600 * 0.25

    def test_add_after_freeze_rejected(self):
        compressor = TadocCompressor()
        compressor.add_file("f", "a b")
        compressor.freeze()
        with pytest.raises(GrammarError):
            compressor.add_file("g", "c d")

    def test_validate_passes(self):
        corpus = compress_files([("f", "a b c a b c")])
        corpus.validate()  # should not raise

    def test_file_segments_match_files(self):
        files = [("f1", "a b c"), ("f2", "d e")]
        corpus = compress_files(files)
        segments = corpus.file_segments()
        assert len(segments) == 2
        root = corpus.rules[0]
        for (start, end), expected in zip(segments, corpus.expand_files()):
            span = root[start:end]
            # Expanding the span yields exactly the file's tokens.
            expanded = []
            for symbol in span:
                if is_rule_ref(symbol):
                    expanded.extend(corpus.expand_rule(rule_index(symbol)))
                else:
                    expanded.append(symbol)
            assert expanded == expected

    def test_stats_columns(self):
        corpus = compress_files([("f", "a b a b")])
        stats = corpus.stats()
        assert set(stats) == {"files", "rules", "vocabulary", "grammar_length"}


class TestValidation:
    def test_dangling_rule_ref(self):
        corpus = CompressedCorpus(
            rules=[[RULE_BASE + 5]], vocab=["a"], file_names=[]
        )
        with pytest.raises(GrammarError):
            corpus.validate()

    def test_self_reference(self):
        corpus = CompressedCorpus(rules=[[RULE_BASE]], vocab=["a"], file_names=[])
        with pytest.raises(GrammarError):
            corpus.validate()

    def test_out_of_range_word(self):
        corpus = CompressedCorpus(rules=[[7]], vocab=["a"], file_names=[])
        with pytest.raises(GrammarError):
            corpus.validate()

    def test_separator_in_non_root(self):
        corpus = CompressedCorpus(
            rules=[[0, RULE_BASE + 1, SEP_BASE], [SEP_BASE + 1, 0]],
            vocab=["a"],
            file_names=["f"],
        )
        with pytest.raises(GrammarError):
            corpus.validate()

    def test_empty_grammar(self):
        with pytest.raises(GrammarError):
            CompressedCorpus(rules=[], vocab=[], file_names=[]).validate()

    def test_separator_file_count_mismatch(self):
        corpus = CompressedCorpus(
            rules=[[0, SEP_BASE]], vocab=["a"], file_names=["f", "g"]
        )
        with pytest.raises(GrammarError):
            corpus.validate()


class TestSerialization:
    def test_roundtrip(self):
        corpus = compress_files([("f1", "a b c a b c"), ("f2", "c b a")])
        blob = serialization.serialize(corpus)
        restored = serialization.deserialize(blob)
        assert restored.rules == corpus.rules
        assert restored.vocab == corpus.vocab
        assert restored.file_names == corpus.file_names

    def test_save_load(self, tmp_path):
        corpus = compress_files([("f", "x y x y")])
        path = tmp_path / "corpus.ntdc"
        size = serialization.save(corpus, path)
        assert path.stat().st_size == size
        assert serialization.load(path).expand_text() == corpus.expand_text()

    def test_bad_magic(self):
        with pytest.raises(CorruptDataError):
            serialization.deserialize(b"XXXX" + b"\x00" * 10)

    def test_truncated_blob(self):
        corpus = compress_files([("f", "a b a b")])
        blob = serialization.serialize(corpus)
        with pytest.raises(CorruptDataError):
            serialization.deserialize(blob[: len(blob) // 2])

    def test_smaller_than_token_array(self):
        text = "repeated phrase over and over " * 200
        corpus = compress_files([("f", text)])
        tokens = sum(len(f) for f in corpus.expand_files())
        assert len(serialization.serialize(corpus)) < tokens * 4 / 2


@settings(max_examples=40, deadline=None)
@given(
    texts=st.lists(
        st.lists(st.sampled_from("abcdefgh"), max_size=60).map(" ".join),
        min_size=1,
        max_size=5,
    )
)
def test_property_compression_is_lossless(texts):
    """Compress/serialize/deserialize/expand is identity on any corpus."""
    files = [(f"f{i}", text) for i, text in enumerate(texts)]
    corpus = compress_files(files)
    blob = serialization.serialize(corpus)
    restored = serialization.deserialize(blob)
    expected = [" ".join(tokenize(text)) for text in texts]
    assert restored.expand_text() == expected
