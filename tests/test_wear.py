"""Tests for NVM write-endurance accounting."""

import pytest

from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory
from repro.nvm.wear import WearReport, wear_report


def tracked(size=1 << 16, cache_bytes=1 << 12):
    return SimulatedMemory(
        DeviceProfile.nvm(), size, cache_bytes=cache_bytes, track_wear=True
    )


class TestTracking:
    def test_untracked_memory_rejected(self):
        mem = SimulatedMemory(DeviceProfile.nvm(), 1024)
        with pytest.raises(ValueError):
            wear_report(mem)

    def test_no_writes_no_wear(self):
        mem = tracked()
        mem.read(0, 64)
        report = wear_report(mem)
        assert report.total_programs == 0
        assert report.lines_touched == 0

    def test_flush_programs_dirty_lines(self):
        mem = tracked()
        mem.write(0, b"x" * 256)   # exactly one 256 B line
        mem.write(512, b"y" * 256)  # another line
        mem.flush()
        report = wear_report(mem)
        assert report.total_programs == 2
        assert report.lines_touched == 2
        assert report.max_line_programs == 1

    def test_repeated_flush_of_same_line_accumulates(self):
        mem = tracked()
        for i in range(5):
            mem.write(0, bytes([i]) * 256)
            mem.flush()
        report = wear_report(mem)
        assert report.max_line_programs == 5
        assert report.lines_touched == 1

    def test_unflushed_dirty_lines_not_programmed(self):
        mem = tracked()
        mem.write(0, b"z" * 256)
        assert wear_report(mem).total_programs == 0

    def test_writeback_eviction_counts(self):
        mem = tracked(cache_bytes=256)  # 1-line cache
        mem.write(0, b"a" * 256)   # dirty line 0
        mem.read(1024, 1)          # evicts dirty line 0 -> write-back
        report = wear_report(mem)
        assert report.total_programs >= 1

    def test_eviction_writeback_then_flush_is_one_program(self):
        """A line programmed by an eviction write-back holds its final
        data on media; the next flush persists cache state but must not
        count the same logical program twice."""
        mem = tracked(cache_bytes=256)  # 1-line cache
        mem.write(0, b"a" * 256)   # dirty line 0
        mem.read(1024, 1)          # evicts line 0 -> media program
        mem.flush()                # line 0 still dirty, but already on media
        report = wear_report(mem)
        assert mem.wear[0] == 1
        # A genuinely new write afterwards programs again on flush.
        mem.write(0, b"b" * 256)
        mem.flush()
        assert mem.wear[0] == 2
        assert wear_report(mem).total_programs == report.total_programs + 1

    def test_redirtied_evicted_line_programs_again(self):
        """Re-dirtying a line after its eviction write-back invalidates
        the dedup: the newer data still needs its own media program."""
        mem = tracked(cache_bytes=256)
        mem.write(0, b"a" * 256)
        mem.read(1024, 1)          # write-back eviction of line 0
        mem.write(0, b"c" * 256)   # new contents, cached dirty again
        mem.flush()
        assert mem.wear[0] == 2

    def test_cached_rewrites_do_not_program(self):
        """Rewriting a cached dirty line costs no extra media programs
        until the next flush -- the write-coalescing NVM caches rely on."""
        mem = tracked()
        for i in range(100):
            mem.write(0, bytes([i % 256]) * 64)
        mem.flush()
        assert wear_report(mem).max_line_programs == 1


class TestReport:
    def test_imbalance(self):
        report = WearReport(
            total_programs=12, lines_touched=3,
            max_line_programs=10, mean_line_programs=4.0,
        )
        assert report.imbalance == pytest.approx(2.5)

    def test_imbalance_empty(self):
        assert WearReport(0, 0, 0, 0.0).imbalance == 0.0

    def test_lifetime_fraction(self):
        report = WearReport(10, 1, 10, 10.0)
        assert report.lifetime_fraction_used(100) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            report.lifetime_fraction_used(0)


class TestEnduranceComparison:
    def test_reconstruction_churn_wears_more_cells(self):
        """The Section VII endurance angle, measured: growable structures
        spread media programs over far more distinct cells (every
        abandoned generation of the table is programmed and then
        discarded), consuming endurance budget across a wider footprint
        than a bound-presized structure that writes each cell in place."""
        from repro.nvm.allocator import PoolAllocator
        from repro.pstruct.phashtable import PHashTable

        def fill(growable: bool):
            mem = tracked(size=1 << 21, cache_bytes=1 << 14)
            allocator = PoolAllocator(mem, base=0, capacity=mem.size)
            if growable:
                table = PHashTable.create(allocator, 4, growable=True)
            else:
                table = PHashTable.create(allocator, 2000)
            for i in range(2000):
                table.put(i * 613, i)
                if i % 50 == 49:
                    mem.flush()
            mem.flush()
            return wear_report(mem)

        presized = fill(growable=False)
        grown = fill(growable=True)
        assert grown.lines_touched > 1.5 * presized.lines_touched
