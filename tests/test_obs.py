"""Span tracer, exporters, and perf snapshots (docs/observability.md).

The load-bearing guarantees pinned here:

* **Partition exactness** -- a traced run's root spans sum bit-exactly to
  ``RunResult.total_ns`` (solo and fused), because the phase timeline and
  the phase spans share the same clock readings.
* **Zero charged overhead** -- tracing on vs off produces bit-identical
  simulated totals and results; the tracer only *reads* the clock.
* **Device attribution** -- the root spans' pool traffic sums to the
  run's final pool stats.
* **Exporter shape** -- Chrome trace JSON is well-formed (complete
  events nested consistently, counter tracks present); snapshots are
  canonical (same run -> same bytes) and the diff gate fires on
  regressions and missing span paths only.
"""

import json

import pytest

from repro.analytics import InvertedIndex, TermVector, WordCount
from repro.core.engine import EngineConfig, NTadocEngine
from repro.datasets.generator import CorpusSpec, generate_corpus_files
from repro.metrics.report import hot_spans_report, ops_report, trace_report
from repro.nvm.memory import SimulatedClock
from repro.obs import snapshot as snapshot_mod
from repro.obs.export import aggregate_spans, chrome_trace, write_chrome_trace
from repro.obs.tracer import OpStats, Tracer, attached, current_tracer
from repro.obs import tracer as obs
from repro.sequitur.compressor import compress_files


@pytest.fixture(scope="module")
def corpus():
    spec = CorpusSpec(n_files=16, tokens_per_file=180, vocab_size=70, seed=902)
    return compress_files(generate_corpus_files(spec))


def traced_run(corpus, task=None, max_depth=None, **config_kwargs):
    tracer = Tracer(max_depth=max_depth)
    engine = NTadocEngine(
        corpus, EngineConfig(tracer=tracer, **config_kwargs)
    )
    run = engine.run(task if task is not None else WordCount())
    return tracer, run


def traced_plan(corpus, max_depth=None, **config_kwargs):
    tracer = Tracer(max_depth=max_depth)
    engine = NTadocEngine(
        corpus, EngineConfig(tracer=tracer, **config_kwargs)
    )
    plan = engine.run_many([WordCount(), InvertedIndex(), TermVector()])
    return tracer, plan


class TestTracerCore:
    def test_nesting_and_self_time(self):
        clock = SimulatedClock()
        tracer = Tracer()
        tracer.bind(clock=clock)
        with tracer.span("outer"):
            clock.advance(100.0)
            with tracer.span("inner"):
                clock.advance(40.0)
            clock.advance(10.0)
        (outer,) = tracer.roots
        assert outer.sim_ns == pytest.approx(150.0)
        assert outer.self_sim_ns == pytest.approx(110.0)
        (inner,) = outer.children
        assert inner.depth == 1
        assert inner.sim_ns == pytest.approx(40.0)
        assert tracer.total_sim_ns() == pytest.approx(150.0)

    def test_max_depth_skips_deep_spans(self):
        clock = SimulatedClock()
        tracer = Tracer(max_depth=1)
        tracer.bind(clock=clock)
        with tracer.span("outer") as outer:
            assert outer is not None
            with tracer.span("inner") as inner:
                assert inner is None
                clock.advance(5.0)
        (root,) = tracer.roots
        assert root.children == []
        assert root.self_sim_ns == pytest.approx(5.0)

    def test_span_closes_on_exception(self):
        clock = SimulatedClock()
        tracer = Tracer()
        tracer.bind(clock=clock)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                clock.advance(7.0)
                raise RuntimeError("boom")
        (span,) = tracer.roots
        assert span.sim_ns == pytest.approx(7.0)
        assert tracer._stack == []
        # The tracer remains usable after the unwind.
        with tracer.span("after"):
            pass
        assert [s.name for s in tracer.roots] == ["doomed", "after"]

    def test_op_stats_aggregation(self):
        stats = OpStats(name="x")
        for ns in (0.5, 1.0, 3.0, 1000.0):
            stats.observe(ns)
        assert stats.count == 4
        assert stats.min_ns == 0.5
        assert stats.max_ns == 1000.0
        assert stats.mean_ns == pytest.approx(1004.5 / 4)
        # Buckets: 0.5 -> 0, 1.0 -> 1, 3.0 -> 2, 1000.0 -> 10.
        assert stats.buckets == {0: 1, 1: 1, 2: 1, 10: 1}

    def test_module_helpers_are_noops_without_tracer(self):
        assert current_tracer() is None
        with obs.span("nobody-listening") as span:
            assert span is None
        obs.op("nobody-listening", 5.0)  # must not raise

    def test_attached_restores_previous(self):
        outer, inner = Tracer(), Tracer()
        with attached(outer):
            assert current_tracer() is outer
            with attached(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer
            with attached(None):  # None passes straight through
                assert current_tracer() is outer
        assert current_tracer() is None

    def test_reset_keeps_bindings(self):
        clock = SimulatedClock()
        tracer = Tracer()
        tracer.bind(clock=clock)
        with tracer.span("x"):
            clock.advance(1.0)
        tracer.reset()
        assert tracer.roots == [] and tracer.ops == {}
        with tracer.span("y"):
            clock.advance(2.0)
        assert tracer.total_sim_ns() == pytest.approx(2.0)


class TestEngineIntegration:
    @pytest.mark.parametrize("traversal", ["topdown", "bottomup"])
    def test_solo_partition_is_exact(self, corpus, traversal):
        tracer, run = traced_run(corpus, traversal=traversal)
        # Bit-exact, not approx: phase spans reuse the timeline's clock
        # readings, so the root spans partition the run total.
        assert tracer.total_sim_ns() == run.total_ns
        assert all(root.category == "phase" for root in tracer.roots)

    def test_fused_partition_is_exact(self, corpus):
        tracer, plan = traced_plan(corpus)
        assert tracer.total_sim_ns() == plan.total_ns

    def test_tracing_changes_nothing_charged(self, corpus):
        baseline = NTadocEngine(corpus, EngineConfig()).run(WordCount())
        tracer, traced = traced_run(corpus)
        assert traced.total_ns == baseline.total_ns  # bit-identical
        assert traced.result == baseline.result
        assert traced.phase_ns == baseline.phase_ns

    def test_tracing_changes_nothing_charged_fused(self, corpus):
        engine = NTadocEngine(corpus, EngineConfig())
        baseline = engine.run_many([WordCount(), InvertedIndex(), TermVector()])
        tracer, traced = traced_plan(corpus)
        assert traced.total_ns == baseline.total_ns
        for solo, fused in zip(baseline.results, traced.results):
            assert fused.result == solo.result

    def test_tracer_detaches_after_run(self, corpus):
        traced_run(corpus)
        assert current_tracer() is None

    def test_device_attribution_sums_to_pool_stats(self, corpus):
        tracer, run = traced_run(corpus)
        # Root spans tile the measured run: their summed deltas must
        # equal the pool's final cumulative counters minus whatever state
        # setup wrote before the first phase opened (the phase-marker
        # region, outside the measurement window by design).
        first = tracer.roots[0]
        for key in ("bytes_read", "bytes_written", "flush_ops"):
            setup = first.device_cum["pool"][key] - first.device["pool"][key]
            spans_sum = sum(root.device["pool"][key] for root in tracer.roots)
            final = getattr(run.pool_stats, key)
            assert spans_sum == final - setup, key

    def test_expected_span_names_present(self, corpus):
        tracer, _ = traced_plan(corpus, traversal="bottomup")
        names = {span.name for span in tracer.spans()}
        assert "phase:initialization" in names
        assert "phase:traversal" in names
        assert "init:pool_build" in names
        assert "plan:bottomup_pass" in names
        assert "plan:segment_sweep" in names
        assert "pool:flush" in names
        assert "traversal:wordlists_bottomup" in names
        assert "task:word_count:fuse" in names
        assert "task:word_count:write_back" in names

    def test_op_counters_recorded(self, corpus):
        tracer, _ = traced_plan(corpus, traversal="bottomup")
        assert "phashtable:add_many" in tracer.ops
        add_many = tracer.ops["phashtable:add_many"]
        assert add_many.count > 0
        assert add_many.sim_ns > 0
        assert "pool:alloc_region" in tracer.ops

    def test_resident_delta_captured(self, corpus):
        tracer, _ = traced_run(corpus)
        (stream_span,) = tracer.find("init:stream")
        # Streaming the corpus in charges DRAM residency to the ledger.
        assert stream_span.resident.get("dram", 0) > 0

    def test_max_depth_limits_recording(self, corpus):
        tracer, run = traced_run(corpus, max_depth=1)
        assert all(not root.children for root in tracer.roots)
        assert tracer.total_sim_ns() == run.total_ns

    def test_rebinding_for_second_run(self, corpus):
        tracer = Tracer()
        engine = NTadocEngine(corpus, EngineConfig(tracer=tracer))
        first = engine.run(WordCount())
        second = engine.run(WordCount())
        assert tracer.total_sim_ns() == first.total_ns + second.total_ns


class TestReports:
    def test_trace_report_renders(self, corpus):
        tracer, _ = traced_plan(corpus)
        text = trace_report(tracer)
        assert "phase:traversal" in text
        assert "simulated total" in text
        shallow = trace_report(tracer, max_depth=1)
        assert "pool:flush" not in shallow

    def test_hot_spans_report_ranked_by_self_time(self, corpus):
        tracer, _ = traced_plan(corpus)
        text = hot_spans_report(tracer, top=5)
        assert "hot spans" in text
        aggregated = aggregate_spans(tracer)
        hottest = max(aggregated, key=lambda p: aggregated[p]["self_sim_ns"])
        assert hottest in text

    def test_hot_spans_report_throughput_columns(self, corpus):
        tracer, _ = traced_plan(corpus)
        text = hot_spans_report(tracer)
        assert "moved" in text
        assert "MB/s" in text
        # At least one span moved pool bytes, so a throughput figure
        # (not the "-" placeholder) must appear somewhere in the table.
        aggregated = aggregate_spans(tracer)
        assert any(
            agg["bytes_read"] + agg["bytes_written"] > 0
            for agg in aggregated.values()
        )

    def test_ops_report_renders(self, corpus):
        tracer, _ = traced_plan(corpus, traversal="bottomup")
        text = ops_report(tracer)
        assert "phashtable:add_many" in text


class TestChromeTrace:
    def test_structure(self, corpus):
        tracer, plan = traced_plan(corpus)
        doc = chrome_trace(tracer)
        json.dumps(doc)  # must be serializable
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "C"}
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == sum(1 for _ in tracer.spans())
        # Complete events carry sim-us timestamps and device args.
        root_events = [
            e for e in complete if e["name"].startswith("phase:")
        ]
        assert sum(e["dur"] for e in root_events) == pytest.approx(
            plan.total_ns / 1e3
        )
        counters = [e for e in events if e["ph"] == "C"]
        assert any(e["name"] == "pool traffic" for e in counters)
        # The final pool counter sample equals the plan's cumulative stats.
        last_pool = [e for e in counters if e["name"] == "pool traffic"][-1]
        pool_stats = plan.results[0].pool_stats
        assert last_pool["args"]["bytes_read"] == pool_stats.bytes_read

    def test_write_chrome_trace(self, corpus, tmp_path):
        tracer, _ = traced_run(corpus)
        path = tmp_path / "trace.json"
        size = write_chrome_trace(tracer, path)
        assert size == path.stat().st_size
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert doc["traceEvents"]


class TestSnapshots:
    def test_snapshot_is_canonical(self, corpus):
        tracer_a, _ = traced_run(corpus)
        tracer_b, _ = traced_run(corpus)
        snap_a = snapshot_mod.build_snapshot(tracer_a, workload="wc")
        snap_b = snapshot_mod.build_snapshot(tracer_b, workload="wc")
        # Same workload -> byte-identical canonical text (no wall times).
        assert snapshot_mod.dumps(snap_a) == snapshot_mod.dumps(snap_b)

    def test_save_load_roundtrip(self, corpus, tmp_path):
        tracer, _ = traced_run(corpus)
        snap = snapshot_mod.build_snapshot(tracer, workload="wc")
        path = tmp_path / "snap.json"
        snapshot_mod.save(snap, path)
        assert snapshot_mod.load(path) == snap

    def test_identical_snapshots_pass_gate(self, corpus):
        tracer, _ = traced_run(corpus)
        snap = snapshot_mod.build_snapshot(tracer, workload="wc")
        diff = snapshot_mod.diff_snapshots(snap, snap)
        assert diff.ok
        assert not diff.regressions and not diff.missing
        assert "within tolerance" in snapshot_mod.format_diff(diff)

    def test_regression_fails_gate(self, corpus):
        tracer, _ = traced_run(corpus)
        base = snapshot_mod.build_snapshot(tracer, workload="wc")
        worse = json.loads(snapshot_mod.dumps(base))
        worse["total_sim_ns"] = base["total_sim_ns"] * 1.5
        path = next(iter(worse["spans"]))
        worse["spans"][path]["sim_ns"] = (
            base["spans"][path]["sim_ns"] * 2 + 1e6
        )
        diff = snapshot_mod.diff_snapshots(base, worse)
        assert not diff.ok
        keys = {entry.key for entry in diff.regressions}
        assert "total_sim_ns" in keys
        assert f"span:{path}:sim_ns" in keys
        assert "REGRESSED" in snapshot_mod.format_diff(diff)

    def test_improvement_reported_not_failed(self, corpus):
        tracer, _ = traced_run(corpus)
        base = snapshot_mod.build_snapshot(tracer, workload="wc")
        better = json.loads(snapshot_mod.dumps(base))
        better["total_sim_ns"] = base["total_sim_ns"] * 0.5
        diff = snapshot_mod.diff_snapshots(base, better)
        assert diff.ok
        assert any(e.key == "total_sim_ns" for e in diff.improvements)

    def test_missing_span_path_fails_gate(self, corpus):
        tracer, _ = traced_run(corpus)
        base = snapshot_mod.build_snapshot(tracer, workload="wc")
        shrunk = json.loads(snapshot_mod.dumps(base))
        dropped = next(iter(shrunk["spans"]))
        del shrunk["spans"][dropped]
        diff = snapshot_mod.diff_snapshots(base, shrunk)
        assert not diff.ok
        assert dropped in diff.missing

    def test_tiny_drift_within_absolute_floor_passes(self, corpus):
        tracer, _ = traced_run(corpus)
        base = snapshot_mod.build_snapshot(tracer, workload="wc")
        jittered = json.loads(snapshot_mod.dumps(base))
        jittered["total_sim_ns"] = base["total_sim_ns"] + 100.0
        assert snapshot_mod.diff_snapshots(base, jittered).ok

    def test_workload_mismatch_noted(self, corpus):
        tracer, _ = traced_run(corpus)
        base = snapshot_mod.build_snapshot(tracer, workload="wc")
        other = snapshot_mod.build_snapshot(tracer, workload="different")
        diff = snapshot_mod.diff_snapshots(base, other)
        assert any("workloads differ" in note for note in diff.notes)
