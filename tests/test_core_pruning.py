"""Tests for Algorithm 1 (pruning) and the device-resident pruned DAG."""

import pytest

from repro.core.dag import Dag
from repro.core.grammar import RULE_BASE, SEP_BASE
from repro.core.pruning import (
    PrunedDag,
    prune_corpus,
    prune_rule,
    redundancy_savings,
)
from repro.core.summation import head_tail_lists, summate_all
from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory
from repro.nvm.pool import NvmPool
from repro.sequitur.compressor import compress_files


def make_pool(size=1 << 21, scatter=False):
    mem = SimulatedMemory(DeviceProfile.nvm(), size)
    return NvmPool(mem, scatter=scatter)


class TestPruneRule:
    def test_paper_worked_example(self):
        """Section IV-B: "R1 -> R2 w3 R4 w4 R3 R2 R4 w4" prunes to
        "R1 -> R2x2 R3 R4x2 w3 w4x2"."""
        body = [
            RULE_BASE + 2, 3, RULE_BASE + 4, 4,
            RULE_BASE + 3, RULE_BASE + 2, RULE_BASE + 4, 4,
        ]
        pruned = prune_rule(body)
        assert pruned.subrules == [(2, 2), (3, 1), (4, 2)]
        assert pruned.words == [(3, 1), (4, 2)]
        assert pruned.raw_length == 8
        assert pruned.pruned_length == 5

    def test_savings_fraction(self):
        pruned = prune_rule([0, 0, 0, 0])
        assert pruned.savings == 0.75

    def test_no_duplicates_no_savings(self):
        pruned = prune_rule([0, 1, RULE_BASE + 1])
        assert pruned.savings == 0.0

    def test_separators_dropped(self):
        pruned = prune_rule([0, SEP_BASE, 1, SEP_BASE + 1])
        assert pruned.words == [(0, 1), (1, 1)]
        assert pruned.subrules == []

    def test_empty_body(self):
        pruned = prune_rule([])
        assert pruned.pruned_length == 0
        assert pruned.savings == 0.0

    def test_corpus_redundancy_savings(self):
        corpus = compress_files([("f", "a a a a b a a a a b " * 30)])
        savings = redundancy_savings(corpus)
        assert 0.0 < savings < 1.0


class TestPrunedDag:
    def build(self, corpus, pool=None, **kwargs):
        pool = pool or make_pool()
        dag = Dag(corpus)
        bounds = summate_all(dag)
        return PrunedDag.build(pool, corpus, dag, bounds=bounds, **kwargs)

    def corpus(self):
        return compress_files(
            [("f1", "x y z x y z q r x y z q r"), ("f2", "q r x y z")]
        )

    def test_entries_match_python_pruning(self):
        corpus = self.corpus()
        pruned = self.build(corpus)
        for rule in range(corpus.n_rules):
            expected = prune_rule(corpus.rules[rule])
            assert pruned.subrules(rule) == expected.subrules
            assert pruned.words(rule) == expected.words

    def test_entries_combined_read(self):
        corpus = self.corpus()
        pruned = self.build(corpus)
        for rule in range(corpus.n_rules):
            subs, words = pruned.entries(rule)
            assert subs == pruned.subrules(rule)
            assert words == pruned.words(rule)

    def test_raw_body_preserved(self):
        corpus = self.corpus()
        pruned = self.build(corpus)
        for rule in range(corpus.n_rules):
            assert pruned.raw_body(rule) == corpus.rules[rule]

    def test_metadata_degrees_and_bounds(self):
        corpus = self.corpus()
        dag = Dag(corpus)
        bounds = summate_all(dag)
        pruned = self.build(corpus)
        for rule in range(corpus.n_rules):
            meta = pruned.meta(rule)
            assert meta[5] == dag.in_degree[rule]
            assert meta[6] == dag.out_degree[rule]
            assert pruned.bound(rule) == bounds[rule]

    def test_weights_read_write(self):
        pruned = self.build(self.corpus())
        pruned.set_weight(1, 42)
        assert pruned.weight(1) == 42
        assert pruned.add_weight(1, 8) == 50
        pruned.reset_weights()
        assert pruned.weight(1) == 0

    def test_rule_bounds_checked(self):
        pruned = self.build(self.corpus())
        with pytest.raises(IndexError):
            pruned.meta(pruned.n_rules)

    def test_adjacent_layout_packs_rules(self):
        """Consecutive rules' entries must be adjacent in the DAG pool."""
        corpus = self.corpus()
        pruned = self.build(corpus)
        previous_end = None
        for rule in range(corpus.n_rules):
            entry_off, _, n_sub, n_words, _, _, _, _, _ = pruned.meta(rule)
            if previous_end is not None:
                assert entry_off == previous_end
            previous_end = entry_off + (n_sub + n_words) * 8

    def test_headtail_store_attached(self):
        corpus = self.corpus()
        dag = Dag(corpus)
        heads, tails = head_tail_lists(dag, 2)
        pool = make_pool()
        pruned = PrunedDag.build(
            pool, corpus, dag, headtail_k=2, heads=heads, tails=tails
        )
        assert pruned.headtail is not None
        for rule in range(1, corpus.n_rules):
            assert pruned.headtail.get(rule) == (heads[rule], tails[rule])

    def test_headtail_requires_lists(self):
        corpus = self.corpus()
        with pytest.raises(ValueError):
            PrunedDag.build(make_pool(), corpus, Dag(corpus), headtail_k=2)

    def test_attach_after_flush_and_crash(self):
        corpus = self.corpus()
        pool = make_pool()
        pruned = self.build(corpus, pool=pool)
        pool.flush()
        pool.memory.crash()

        reopened_pool = NvmPool(pool.memory)
        reopened_pool.load_directory()
        reopened = PrunedDag.attach(reopened_pool)
        assert reopened.n_rules == corpus.n_rules
        for rule in range(corpus.n_rules):
            assert reopened.raw_body(rule) == corpus.rules[rule]

    def test_prune_corpus_convenience(self):
        corpus = self.corpus()
        pruned = prune_corpus(make_pool(), corpus)
        assert pruned.n_rules == corpus.n_rules


class TestNaiveLayout:
    def corpus(self):
        return compress_files([("f", "a b c a b c d e a b c d e " * 4)])

    def test_indexed_layout_roundtrip(self):
        corpus = self.corpus()
        dag = Dag(corpus)
        pool = make_pool(scatter=True)
        pruned = PrunedDag.build(pool, corpus, dag, per_rule=True)
        assert pruned.indexed_layout
        for rule in range(corpus.n_rules):
            expected = prune_rule(corpus.rules[rule])
            assert pruned.subrules(rule) == expected.subrules
            assert pruned.words(rule) == expected.words
            assert pruned.raw_body(rule) == corpus.rules[rule]

    def test_scattered_layout_costs_more_to_traverse(self):
        """The core Section III-B effect: the naive port's pointer-chased,
        scattered layout pays far more device time for the same reads."""
        corpus = self.corpus()
        dag = Dag(corpus)

        def cold_traversal_cost(scatter: bool, per_rule: bool) -> float:
            pool = make_pool(scatter=scatter)
            pruned = PrunedDag.build(pool, corpus, dag, per_rule=per_rule)
            pool.flush()
            pool.memory.crash()  # cold cache, data intact
            start = pool.memory.clock.ns
            for rule in range(corpus.n_rules):
                pruned.meta(rule)
                pruned.entries(rule)
            return pool.memory.clock.ns - start

        packed_cost = cold_traversal_cost(scatter=False, per_rule=False)
        naive_cost = cold_traversal_cost(scatter=True, per_rule=True)
        assert naive_cost > 2 * packed_cost
