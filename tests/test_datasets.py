"""Tests for the synthetic corpus generators and dataset profiles."""

import pytest

from repro.datasets.generator import CorpusSpec, generate_corpus_files
from repro.datasets.profiles import PROFILES, corpus_for, dataset_files
from repro.sequitur.compressor import compress_files


def spec(**overrides):
    base = dict(
        n_files=4, tokens_per_file=400, vocab_size=300,
        phrase_pool=60, templates=4, template_len=120, window=30, seed=7,
    )
    base.update(overrides)
    return CorpusSpec(**base)


class TestGenerator:
    def test_deterministic(self):
        assert generate_corpus_files(spec()) == generate_corpus_files(spec())

    def test_seed_changes_output(self):
        assert generate_corpus_files(spec()) != generate_corpus_files(
            spec(seed=8)
        )

    def test_file_count(self):
        files = generate_corpus_files(spec(n_files=7))
        assert len(files) == 7
        assert len({name for name, _ in files}) == 7

    def test_token_lengths_near_target(self):
        files = generate_corpus_files(spec(tokens_per_file=400))
        lengths = [len(text.split()) for _, text in files]
        assert all(100 < n < 900 for n in lengths)

    def test_vocabulary_bounded(self):
        files = generate_corpus_files(spec(vocab_size=300))
        words = {w for _, text in files for w in text.split()}
        assert len(words) <= 300

    def test_repetitive_output_compresses_well(self):
        files = generate_corpus_files(spec())
        corpus = compress_files(files)
        tokens = sum(len(f) for f in corpus.expand_files())
        assert corpus.grammar_length() < tokens * 0.5

    def test_zero_templates_still_generates(self):
        files = generate_corpus_files(spec(templates=0))
        assert all(text for _, text in files)


class TestProfiles:
    def test_four_profiles_exist(self):
        assert set(PROFILES) == {"A", "B", "C", "D"}

    def test_structural_characters(self):
        """Table I's structure: A is one file, B is many small files,
        D is the largest corpus."""
        a, b, c, d = (PROFILES[x].spec for x in "ABCD")
        assert a.n_files == 1
        assert b.n_files > 100
        assert b.tokens_per_file < 200
        assert d.total_tokens() > c.total_tokens() > 0
        assert d.vocab_size > c.vocab_size

    def test_dataset_files_generation(self):
        files = dataset_files("B", scale=0.1)
        assert len(files) > 10  # still "many files" after scaling

    def test_corpus_for_memoized(self):
        first = corpus_for("A", scale=0.05)
        second = corpus_for("A", scale=0.05)
        assert first is second

    def test_corpus_for_disk_cache(self, tmp_path):
        corpus = corpus_for("B", scale=0.07, cache_dir=tmp_path)
        cached = list(tmp_path.glob("*.ntdc"))
        assert len(cached) == 1
        # Force a reload path by clearing the in-process memo.
        from repro.datasets import profiles

        profiles._corpus_cache.pop(("B", 0.07))
        reloaded = corpus_for("B", scale=0.07, cache_dir=tmp_path)
        assert reloaded.rules == corpus.rules

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            dataset_files("Z")

    def test_scaled_spec_preserves_template_structure(self):
        files_small = dataset_files("C", scale=0.1)
        corpus = compress_files(files_small)
        tokens = sum(len(f) for f in corpus.expand_files())
        assert corpus.grammar_length() < tokens * 0.6
