"""Tests for nvmlint: each rule fires on a minimal fixture, stays quiet
on the compliant variant, honors suppressions, and the shipped tree is
clean end to end."""

import json
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint import REGISTRY, all_rule_ids, lint_paths
from repro.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_source(tmp_path, source, name="mod.py", **kwargs):
    """Lint one fixture file; returns the LintResult."""
    target = tmp_path / name
    target.write_text(source, encoding="utf-8")
    return lint_paths([target], **kwargs)


def rules_fired(result):
    return sorted({f.rule for f in result.findings})


class TestEngine:
    def test_all_rules_registered(self):
        assert all_rule_ids() == [
            "ND001", "ND002", "ND003", "ND004", "ND005", "ND006", "ND007",
            "ND008", "ND009", "ND010", "ND011", "ND012", "ND013", "ND014",
        ]
        for rule_id, rule in REGISTRY.items():
            assert rule.id == rule_id
            assert rule.summary

    def test_syntax_error_reported_as_nd000(self, tmp_path):
        result = lint_source(tmp_path, "def broken(:\n")
        assert rules_fired(result) == ["ND000"]
        assert result.exit_code == 1

    def test_unknown_rule_id_rejected(self, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        with pytest.raises(ValueError):
            lint_paths([tmp_path], select=["ND999"])

    def test_missing_path_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            lint_paths([tmp_path / "nope"])

    def test_findings_sorted_and_located(self, tmp_path):
        source = "import random\n\nb = random.random()\na = random.random()\n"
        result = lint_source(tmp_path, source)
        assert len(result.findings) == 2
        lines = [f.line for f in result.findings]
        assert lines == sorted(lines)
        assert all(f.col >= 1 for f in result.findings)


class TestND001RawAccess:
    FIRING = (
        "def sneak(mem):\n"
        "    lo = mem.peek(0, 4)\n"
        "    mem.poke(0, b'1234')\n"
        "    return mem._buf[0], lo\n"
    )

    def test_fires_on_peek_poke_and_buf(self, tmp_path):
        result = lint_source(tmp_path, self.FIRING)
        assert rules_fired(result) == ["ND001"]
        assert len(result.findings) == 3

    def test_accounted_accessors_clean(self, tmp_path):
        source = (
            "def fine(mem):\n"
            "    data = mem.read(0, 4)\n"
            "    mem.write(4, data)\n"
        )
        result = lint_source(tmp_path, source)
        assert result.findings == []

    def test_test_files_exempt(self, tmp_path):
        result = lint_source(tmp_path, self.FIRING, name="test_mod.py")
        assert result.findings == []

    def test_whitelisted_module_exempt(self, tmp_path):
        nvm = tmp_path / "repro" / "nvm"
        nvm.mkdir(parents=True)
        (nvm / "memory.py").write_text(self.FIRING, encoding="utf-8")
        assert lint_paths([nvm / "memory.py"]).findings == []

    def test_suppression_comment(self, tmp_path):
        source = (
            "def sneak(mem):\n"
            "    return mem.peek(0, 4)  # nvmlint: disable=ND001\n"
        )
        result = lint_source(tmp_path, source)
        assert result.findings == []
        assert result.suppressed == 1


class TestND002UnloggedTxWrite:
    def test_fires_on_direct_write_in_transaction(self, tmp_path):
        source = (
            "def mutate(log, mem):\n"
            "    with log.transaction() as tx:\n"
            "        tx.write(0, b'ok')\n"
            "        mem.write(8, b'bad')\n"
            "        mem.write_uint(16, 4, 7)\n"
        )
        result = lint_source(tmp_path, source)
        assert rules_fired(result) == ["ND002"]
        assert len(result.findings) == 2

    def test_tx_handle_writes_clean(self, tmp_path):
        source = (
            "def mutate(log):\n"
            "    with log.transaction() as tx:\n"
            "        tx.write(0, b'ok')\n"
            "        tx.write(8, b'ok')\n"
        )
        assert lint_source(tmp_path, source).findings == []

    def test_writes_outside_transaction_clean(self, tmp_path):
        source = "def mutate(mem):\n    mem.write(0, b'ok')\n"
        assert lint_source(tmp_path, source).findings == []

    def test_unbound_transaction_flags_every_write(self, tmp_path):
        source = (
            "def mutate(log, mem):\n"
            "    with log.transaction():\n"
            "        mem.write(0, b'bad')\n"
        )
        result = lint_source(tmp_path, source)
        assert rules_fired(result) == ["ND002"]


class TestND003Nondeterminism:
    def test_wall_clock_read_alone_is_clean(self, tmp_path):
        # Reading the wall clock is legitimate (reported next to simulated
        # time); ND010 flags the *flow* into a charging sink instead.
        source = "import time\n\nstart = time.time()\n"
        assert lint_source(tmp_path, source).findings == []

    def test_fires_on_module_level_random(self, tmp_path):
        source = "import random\n\nx = random.random()\n"
        result = lint_source(tmp_path, source)
        assert rules_fired(result) == ["ND003"]

    def test_fires_on_unseeded_rng_instance(self, tmp_path):
        source = "import random\n\nrng = random.Random()\n"
        result = lint_source(tmp_path, source)
        assert rules_fired(result) == ["ND003"]

    def test_seeded_rng_clean(self, tmp_path):
        source = "import random\n\nrng = random.Random(42)\n"
        assert lint_source(tmp_path, source).findings == []

    def test_fires_on_set_iteration(self, tmp_path):
        source = (
            "def visit(offsets):\n"
            "    pending = set(offsets)\n"
            "    for off in pending:\n"
            "        print(off)\n"
        )
        result = lint_source(tmp_path, source)
        assert rules_fired(result) == ["ND003"]

    def test_sorted_set_iteration_clean(self, tmp_path):
        source = (
            "def visit(offsets):\n"
            "    pending = set(offsets)\n"
            "    for off in sorted(pending):\n"
            "        print(off)\n"
        )
        assert lint_source(tmp_path, source).findings == []

    def test_suppression_comment(self, tmp_path):
        source = (
            "import random\n\n"
            "x = random.random()  # nvmlint: disable=ND003\n"
        )
        result = lint_source(tmp_path, source)
        assert result.findings == []
        assert result.suppressed == 1


class TestND004StructWidth:
    def test_fires_on_unpack_read_mismatch(self, tmp_path):
        source = (
            "import struct\n\n"
            "def load(mem):\n"
            "    return struct.unpack('<II', mem.read(0, 4))\n"
        )
        result = lint_source(tmp_path, source)
        assert rules_fired(result) == ["ND004"]
        assert "8 bytes" in result.findings[0].message

    def test_matching_unpack_clean(self, tmp_path):
        source = (
            "import struct\n\n"
            "def load(mem):\n"
            "    return struct.unpack('<II', mem.read(0, 8))\n"
        )
        assert lint_source(tmp_path, source).findings == []

    def test_fires_through_struct_constant_and_local(self, tmp_path):
        source = (
            "import struct\n\n"
            "HEADER = struct.Struct('<QI')\n\n"
            "def load(mem):\n"
            "    raw = mem.read(0, 8)\n"
            "    return HEADER.unpack(raw)\n"
        )
        result = lint_source(tmp_path, source)
        assert rules_fired(result) == ["ND004"]

    def test_fires_on_width_helper_mismatch(self, tmp_path):
        source = (
            "def read_u32(mem, off):\n"
            "    return mem.read_uint(off, 2)\n"
        )
        result = lint_source(tmp_path, source)
        assert rules_fired(result) == ["ND004"]

    def test_consistent_width_helper_clean(self, tmp_path):
        source = (
            "def read_u32(mem, off):\n"
            "    return mem.read_uint(off, 4)\n"
        )
        assert lint_source(tmp_path, source).findings == []

    def test_fires_on_width_named_constant(self, tmp_path):
        source = "import struct\n\nU32 = struct.Struct('<Q')\n"
        result = lint_source(tmp_path, source)
        assert rules_fired(result) == ["ND004"]

    def test_unresolvable_sizes_skipped(self, tmp_path):
        source = (
            "import struct\n\n"
            "def load(mem, fmt, size):\n"
            "    return struct.unpack(fmt, mem.read(0, size))\n"
        )
        assert lint_source(tmp_path, source).findings == []


class TestND005PhaseOrder:
    def test_fires_without_flush(self, tmp_path):
        source = (
            "def checkpoint(pp):\n"
            "    pp.complete_phase('traversal')\n"
        )
        result = lint_source(tmp_path, source)
        assert rules_fired(result) == ["ND005"]

    def test_flush_first_clean(self, tmp_path):
        source = (
            "def checkpoint(pool, pp):\n"
            "    pool.flush()\n"
            "    pp.complete_phase('traversal')\n"
        )
        assert lint_source(tmp_path, source).findings == []

    def test_flush_after_completion_still_fires(self, tmp_path):
        source = (
            "def checkpoint(pool, pp):\n"
            "    pp.complete_phase('traversal')\n"
            "    pool.flush()\n"
        )
        result = lint_source(tmp_path, source)
        assert rules_fired(result) == ["ND005"]

    def test_suppression_comment(self, tmp_path):
        source = (
            "def checkpoint(pp):\n"
            "    pp.complete_phase('t')  # nvmlint: disable=ND005\n"
        )
        result = lint_source(tmp_path, source)
        assert result.findings == []
        assert result.suppressed == 1


class TestND006MarkerOrder:
    def test_fires_on_unbarriered_marker_write(self, tmp_path):
        source = (
            "def commit(mem, marker_off, n):\n"
            "    mem.write_u64(marker_off, n + 1)\n"
        )
        result = lint_source(tmp_path, source)
        assert rules_fired(result) == ["ND006"]

    def test_fires_on_marker_attribute(self, tmp_path):
        source = (
            "def commit(mem, state):\n"
            "    mem.write(state.marker_offset, b'done')\n"
        )
        result = lint_source(tmp_path, source)
        assert rules_fired(result) == ["ND006"]

    def test_flush_barrier_first_is_clean(self, tmp_path):
        source = (
            "def commit(mem, marker_off, n):\n"
            "    mem.flush()\n"
            "    mem.write_u64(marker_off, n + 1)\n"
            "    mem.flush()\n"
        )
        assert lint_source(tmp_path, source).findings == []

    def test_marker_write_before_flush_still_fires(self, tmp_path):
        source = (
            "def commit(mem, marker_off, n):\n"
            "    mem.write_u64(marker_off, n + 1)\n"
            "    mem.flush()\n"
        )
        result = lint_source(tmp_path, source)
        assert rules_fired(result) == ["ND006"]

    def test_non_marker_write_is_clean(self, tmp_path):
        source = (
            "def store(mem, data_off):\n"
            "    mem.write_u64(data_off, 7)\n"
        )
        assert lint_source(tmp_path, source).findings == []

    def test_module_level_write_uint_name(self, tmp_path):
        source = (
            "def commit(mem, commit_marker):\n"
            "    write_uint(mem, commit_marker, 1)\n"
        )
        result = lint_source(tmp_path, source)
        assert rules_fired(result) == ["ND006"]


class TestSelectIgnoreAndBaseline:
    SOURCE = (
        "import random\n\n"
        "def sneak(mem):\n"
        "    mem.poke(0, random.random())\n"
    )

    def test_select_narrows_rules(self, tmp_path):
        result = lint_source(tmp_path, self.SOURCE, select=["ND001"])
        assert rules_fired(result) == ["ND001"]

    def test_ignore_drops_rules(self, tmp_path):
        result = lint_source(tmp_path, self.SOURCE, ignore=["ND001"])
        assert rules_fired(result) == ["ND003"]

    def test_baseline_roundtrip_via_cli(self, tmp_path, capsys):
        target = tmp_path / "legacy.py"
        target.write_text(self.SOURCE, encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        assert lint_main(
            [str(target), "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        capsys.readouterr()
        # With the baseline applied the same tree is clean...
        assert lint_main([str(target), "--baseline", str(baseline)]) == 0
        assert "baselined" in capsys.readouterr().out
        # ...but a new violation still fails.
        target.write_text(self.SOURCE + "extra = random.random()\n")
        assert lint_main([str(target), "--baseline", str(baseline)]) == 1


class TestCli:
    def test_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        assert lint_main([str(clean)]) == 0
        assert lint_main([str(dirty)]) == 1
        assert lint_main([str(tmp_path / "missing.py")]) == 2
        assert lint_main([str(clean), "--select", "ND999"]) == 2
        assert lint_main(["--write-baseline", str(clean)]) == 2
        capsys.readouterr()

    def test_json_output(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        assert lint_main([str(dirty), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["findings"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "ND003"
        assert finding["line"] == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in all_rule_ids():
            assert rule_id in out

    def test_ntadoc_lint_subcommand(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        assert repro_main(["lint", str(dirty)]) == 1
        assert "ND003" in capsys.readouterr().out
        assert repro_main(["lint", "--list-rules"]) == 0
        capsys.readouterr()


class TestND007KernelContract:
    VIEW_FIRING = (
        "import numpy as np\n"
        "def sneak(mem):\n"
        "    view = np.frombuffer(mem._buf, dtype='<u8')\n"
        "    flat = memoryview(mem._buf)\n"
        "    return view, flat\n"
    )

    PACK_LOOP_FIRING = (
        "import struct\n"
        "from repro.kernels import typed_array\n"
        "def slow(mem, values):\n"
        "    for off, v in enumerate(values):\n"
        "        mem.write(off * 4, struct.pack('<I', v))\n"
    )

    def test_fires_on_views_over_buf(self, tmp_path):
        result = lint_source(tmp_path, self.VIEW_FIRING)
        # Each view build also trips ND001's _buf check; ND007 names the
        # kernel-contract violation specifically.
        assert "ND007" in rules_fired(result)
        assert sum(f.rule == "ND007" for f in result.findings) == 2

    def test_fires_on_pack_loop_in_kernel_adopter(self, tmp_path):
        result = lint_source(tmp_path, self.PACK_LOOP_FIRING)
        assert rules_fired(result) == ["ND007"]

    def test_pack_loop_clean_without_kernel_import(self, tmp_path):
        source = self.PACK_LOOP_FIRING.replace(
            "from repro.kernels import typed_array\n", ""
        )
        assert lint_source(tmp_path, source).findings == []

    def test_bulk_kernel_calls_clean(self, tmp_path):
        source = (
            "from repro.kernels import typed_array\n"
            "def fast(mem, values):\n"
            "    mem.write_array(0, values, 4)\n"
            "    return mem.read_array(0, len(values), 4)\n"
        )
        assert lint_source(tmp_path, source).findings == []

    def test_struct_object_pack_clean(self, tmp_path):
        source = (
            "import struct\n"
            "from repro.kernels import typed_array\n"
            "_H = struct.Struct('<II')\n"
            "def headers(mem, items):\n"
            "    for off, (a, b) in enumerate(items):\n"
            "        mem.write(off * 8, _H.pack(a, b))\n"
        )
        assert lint_source(tmp_path, source).findings == []

    def test_kernel_package_exempt(self, tmp_path):
        pkg = tmp_path / "repro" / "kernels"
        pkg.mkdir(parents=True)
        (pkg / "core.py").write_text(self.VIEW_FIRING, encoding="utf-8")
        assert lint_paths([pkg / "core.py"]).findings == []


class TestND013SegmentOwnership:
    FIRING = (
        "def hijack(pool):\n"
        "    pool.create_segment('mine', 4096)\n"
        "    nested = pool.segment_pool('seg000001')\n"
        "    return nested\n"
    )

    def test_fires_outside_segment_layer(self, tmp_path):
        result = lint_source(tmp_path, self.FIRING)
        assert rules_fired(result) == ["ND013"]
        assert len(result.findings) == 2

    def test_retire_outside_transaction_fires_everywhere(self, tmp_path):
        # Even inside the owning package, retirement must be logged.
        pkg = tmp_path / "repro" / "ingest"
        pkg.mkdir(parents=True)
        source = (
            "def drop(pool):\n"
            "    pool.retire_segment('seg000001')\n"
        )
        (pkg / "compactor.py").write_text(source, encoding="utf-8")
        result = lint_paths([pkg / "compactor.py"])
        assert rules_fired(result) == ["ND013"]

    def test_owner_retire_inside_transaction_clean(self, tmp_path):
        pkg = tmp_path / "repro" / "ingest"
        pkg.mkdir(parents=True)
        source = (
            "def compact(log, pool, blob):\n"
            "    with log.transaction() as tx:\n"
            "        tx.write(0, blob)\n"
            "        pool.retire_segment('seg000001')\n"
            "    pool.create_segment('seg000002', 4096)\n"
        )
        (pkg / "compactor.py").write_text(source, encoding="utf-8")
        assert lint_paths([pkg / "compactor.py"]).findings == []

    def test_test_files_exempt(self, tmp_path):
        result = lint_source(tmp_path, self.FIRING, name="test_mod.py")
        assert result.findings == []


class TestShippedTree:
    def test_src_tree_is_clean(self):
        result = lint_paths([REPO_ROOT / "src"])
        assert result.files_checked > 50
        assert [f.render() for f in result.findings] == []
        # No standing suppressions: the interprocedural taint engine
        # proves the one former exemption (``wall_now_s`` reading the
        # wall clock in metrics/timer.py) never flows into a charging
        # sink, so the tree is clean under all thirteen rules unaided.
        assert result.suppressed == 0
