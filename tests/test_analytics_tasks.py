"""Cross-system correctness: every task, every strategy, vs the oracle.

The pivotal property of TADOC is that analytics on compressed data give
*exactly* the same answers as analytics on the raw text.  These tests run
each of the six tasks through:

* N-TADOC top-down,
* N-TADOC bottom-up,
* the naive NVM port,
* the uncompressed baseline scan,

and require bit-identical results against a pure-Python oracle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import task_by_name
from repro.analytics.sequence_count import SequenceCount
from repro.analytics.term_vector import TermVector
from repro.analytics.word_count import WordCount
from repro.baselines.naive_nvm import naive_nvm_engine
from repro.baselines.uncompressed import UncompressedEngine
from repro.core.engine import EngineConfig, NTadocEngine
from repro.core.ngrams import pack_ngram
from repro.sequitur.compressor import compress_files

FILES = [
    ("reviews.txt", "great food great service great food would come again "
                    "terrible wait terrible food great service"),
    ("abstract.txt", "this project studies great service systems and "
                     "great food networks this project studies queues"),
    ("dump.txt", "the system the system the system of a down the network "
                 "of queues and the system of networks"),
    ("empty.txt", ""),
    ("tiny.txt", "one"),
]

TASKS = [
    "word_count",
    "sort",
    "term_vector",
    "inverted_index",
    "sequence_count",
    "ranked_inverted_index",
]


@pytest.fixture(scope="module")
def corpus():
    return compress_files(FILES)


@pytest.fixture(scope="module")
def token_files(corpus):
    return corpus.expand_files()


def oracle(task_name, token_files, vocab=None):
    task = task_by_name(task_name)
    if task_name in ("sequence_count", "ranked_inverted_index"):
        result = task.reference(token_files, 2)
        return {pack_ngram(k): v for k, v in result.items()}
    if task_name == "sort":
        counts = WordCount.reference(token_files)
        return sorted(counts.items(), key=lambda pair: vocab[pair[0]])
    if task_name == "term_vector":
        # Count ties break on the word string (dictionary-independent).
        return task.reference(token_files, 10, vocab)
    return task.reference(token_files)


@pytest.mark.parametrize("task_name", TASKS)
@pytest.mark.parametrize(
    "strategy", ["topdown", "bottomup"], ids=["topdown", "bottomup"]
)
def test_ntadoc_matches_oracle(corpus, token_files, task_name, strategy):
    engine = NTadocEngine(corpus, EngineConfig(traversal=strategy))
    run = engine.run(task_by_name(task_name))
    assert run.result == oracle(task_name, token_files, corpus.vocab)
    assert run.strategy == strategy


@pytest.mark.parametrize("task_name", TASKS)
def test_uncompressed_matches_oracle(corpus, token_files, task_name):
    run = UncompressedEngine(corpus, EngineConfig()).run(task_by_name(task_name))
    assert run.result == oracle(task_name, token_files, corpus.vocab)


@pytest.mark.parametrize("task_name", TASKS)
def test_naive_port_matches_oracle(corpus, token_files, task_name):
    """The naive port is slow, not wrong: results must be identical."""
    run = naive_nvm_engine(corpus).run(task_by_name(task_name))
    assert run.result == oracle(task_name, token_files, corpus.vocab)


@pytest.mark.parametrize("task_name", TASKS)
def test_operation_level_persistence_matches(corpus, token_files, task_name):
    engine = NTadocEngine(corpus, EngineConfig(persistence="operation"))
    run = engine.run(task_by_name(task_name))
    assert run.result == oracle(task_name, token_files, corpus.vocab)


class TestTaskDetails:
    def test_word_count_values(self, corpus):
        run = NTadocEngine(corpus).run(WordCount())
        rendered = {corpus.vocab[w]: c for w, c in run.result.items()}
        assert rendered["great"] == 6
        assert rendered["system"] == 4

    def test_sort_is_alphabetical(self, corpus):
        run = NTadocEngine(corpus).run(task_by_name("sort"))
        words = [corpus.vocab[w] for w, _ in run.result]
        assert words == sorted(words)

    def test_term_vector_k_limits_length(self, corpus):
        run = NTadocEngine(
            corpus, EngineConfig(term_vector_k=3)
        ).run(TermVector())
        assert all(len(vector) <= 3 for vector in run.result)

    def test_term_vector_sorted_by_count(self, corpus):
        run = NTadocEngine(corpus).run(TermVector())
        for vector in run.result:
            counts = [c for _, c in vector]
            assert counts == sorted(counts, reverse=True)

    def test_inverted_index_posting_sorted(self, corpus):
        run = NTadocEngine(corpus).run(task_by_name("inverted_index"))
        for posting in run.result.values():
            assert posting == sorted(posting)

    def test_empty_file_absent_from_index(self, corpus):
        run = NTadocEngine(corpus).run(task_by_name("inverted_index"))
        empty_index = FILES.index(("empty.txt", ""))
        assert all(empty_index not in p for p in run.result.values())

    def test_sequence_count_trigrams(self, corpus, token_files):
        engine = NTadocEngine(corpus, EngineConfig(ngram_n=3))
        run = engine.run(SequenceCount())
        expected = SequenceCount.reference(token_files, 3)
        assert run.result == {pack_ngram(k): v for k, v in expected.items()}

    def test_ranked_index_order(self, corpus):
        run = NTadocEngine(corpus).run(task_by_name("ranked_inverted_index"))
        for posting in run.result.values():
            counts = [c for _, c in posting]
            assert counts == sorted(counts, reverse=True)

    def test_ngram_names_renderable(self, corpus):
        run = NTadocEngine(corpus).run(SequenceCount())
        for key in run.result:
            assert key in run.ngram_names


class TestRunResultShape:
    def test_phases_recorded(self, corpus):
        run = NTadocEngine(corpus).run(WordCount())
        assert set(run.phase_ns) == {"initialization", "traversal"}
        assert run.init_ns > 0
        assert run.traversal_ns > 0
        assert run.total_ns == pytest.approx(run.init_ns + run.traversal_ns)

    def test_memory_peaks_positive(self, corpus):
        run = NTadocEngine(corpus).run(WordCount())
        assert run.dram_peak > 0
        assert run.pool_peak > 0

    def test_deterministic_simulated_time(self, corpus):
        first = NTadocEngine(corpus).run(WordCount())
        second = NTadocEngine(corpus).run(WordCount())
        assert first.total_ns == second.total_ns
        assert first.result == second.result


@settings(max_examples=15, deadline=None)
@given(
    texts=st.lists(
        st.lists(st.sampled_from(["aa", "bb", "cc", "dd"]), max_size=40).map(
            " ".join
        ),
        min_size=1,
        max_size=4,
    )
)
def test_property_word_count_all_systems_agree(texts):
    files = [(f"f{i}", t) for i, t in enumerate(texts)]
    corpus = compress_files(files)
    expected = WordCount.reference(corpus.expand_files())
    for strategy in ("topdown", "bottomup"):
        run = NTadocEngine(corpus, EngineConfig(traversal=strategy)).run(
            WordCount()
        )
        assert run.result == expected
    base = UncompressedEngine(corpus, EngineConfig()).run(WordCount())
    assert base.result == expected
