import time


def charge_io(clock, amount):
    clock.advance(amount)


def direct(clock):
    t = time.perf_counter()
    clock.advance(int(t * 1e9))


def indirect(clock):
    start = time.time()
    charge_io(clock, start)


def layout_dep(clock, obj):
    h = id(obj)
    clock.advance(h)


def order_dep(clock, keys):
    total = 0
    for key in set(keys):
        total += key
    clock.advance(total)
