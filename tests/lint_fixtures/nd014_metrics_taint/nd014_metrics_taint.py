from repro.obs.events import current_journal
from repro.obs.metrics import current_registry


def charge_io(clock, amount):
    clock.advance(amount)


def direct(clock):
    reg = current_registry()
    count = reg.snapshot()["counters"]["ntadoc_runs_total"]
    clock.advance(count * 10.0)


def indirect(clock):
    journal = current_journal()
    backlog = journal.events
    charge_io(clock, len(backlog) * 2.0)


def stored(stats):
    reg = current_registry()
    stats.device_ns = reg.snapshot()["gauges"]["ntadoc_pool_resident"]
