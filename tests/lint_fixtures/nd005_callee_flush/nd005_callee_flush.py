def barrier(pool):
    pool.flush()


def checkpoint(pool, phases):
    barrier(pool)
    phases.complete_phase("build")
