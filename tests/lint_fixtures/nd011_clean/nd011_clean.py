def merge_results(totals, counts):
    totals.update(counts)


def count_worker(mem, partition, results):
    local_counts = {}
    for rule_id in partition:
        mem.write_uint(rule_id * 8, 1)
        local_counts[rule_id] = 1
    results[partition[0]] = local_counts
