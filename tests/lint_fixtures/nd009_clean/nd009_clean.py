from repro.pstruct import PVector


def build(log, pool):
    with log.transaction() as tx:
        vec = PVector(pool, 8)
        tx.write(0, b"meta")
        vec.append(7)
    return None
