TOTAL_OFF = 4096


def count_worker(mem, partition, results):
    for rule_id in partition:
        mem.write_uint(rule_id * 8, 1)
    mem.write_uint(TOTAL_OFF, 1)
    results.append(1)
    results["grand_total"] = 2
