from a_mod import persist_marker


def entry(mem, marker_off):
    persist_marker(mem, marker_off)
