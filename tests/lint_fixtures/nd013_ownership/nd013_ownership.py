def hijack_extent(pool):
    off = pool.create_segment("mine", 4096)
    nested = pool.segment_pool("seg000001")
    nested.alloc_region("squatter", 64)
    pool.retire_segment("seg000001")
    return off


def tidy_compactor(log, pool):
    # Transaction satisfies the ordering check, but this module still
    # is not the segment layer: ownership fires on the retire call.
    with log.transaction() as tx:
        tx.write(0, b"manifest")
        pool.retire_segment("seg000002")
