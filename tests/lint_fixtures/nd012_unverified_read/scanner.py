def dump_region(pool, name):
    offset, size = pool.get_region(name)
    raw = pool.unverified_read(offset, size)
    return raw


def tail_bytes(mem, offset):
    return mem.read_unverified(offset, 16)


def verified_ok(mem, offset):
    return mem.read(offset, 16)
