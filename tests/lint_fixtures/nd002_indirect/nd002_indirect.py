def seal_header(mem, off, value):
    mem.write_uint(off, value)


def apply_update(log, mem):
    with log.transaction() as tx:
        tx.write(0, b"logged")
        seal_header(mem, 8, 7)
