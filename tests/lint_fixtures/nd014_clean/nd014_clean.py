from repro.obs.events import emit
from repro.obs.metrics import inc, observe


def charge_and_record(clock, device, nbytes):
    cost = nbytes * device.ns_per_byte
    clock.advance(cost)
    inc("ntadoc_pool_bytes_read_total", nbytes)
    observe("ntadoc_task_ns", cost, task="word_count")
    emit("task_complete", task="word_count")


def report(registry):
    return registry.expose()
