def persist_marker(mem, marker_off):
    mem.write_uint(marker_off, 1)
