from a_mod import persist_marker


def entry(mem, pool, marker_off):
    pool.flush()
    persist_marker(mem, marker_off)
