from repro.pstruct import PVector


def build(log, pool, out):
    with log.transaction() as tx:
        vec = PVector(pool, 8)
        tx.write(0, b"meta")
        out.append(vec)
    vec.append(7)
    tx.write(8, b"late")
