import time


def report(clock, emit):
    wall = time.perf_counter()
    sim = clock.now_ns()
    emit(wall, sim)


def deterministic_charge(clock, keys):
    for key in sorted(set(keys)):
        clock.advance(key * 10)
