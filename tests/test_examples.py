"""Smoke tests: every example script must run to completion.

Examples are documentation that executes; breaking one is breaking the
README.  Each runs in-process (runpy) with stdout captured.
"""

import io
import runpy
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = buffer.getvalue()
    assert output.strip(), f"{script} produced no output"


def test_all_examples_discovered():
    assert set(EXAMPLES) >= {
        "quickstart.py",
        "search_engine.py",
        "review_analytics.py",
        "embedded_checkpointing.py",
        "log_stream.py",
        "cost_model_tour.py",
    }


def test_quickstart_reports_speedup():
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    assert "speedup" in buffer.getvalue()


def test_checkpointing_demonstrates_recovery():
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(
            str(EXAMPLES_DIR / "embedded_checkpointing.py"), run_name="__main__"
        )
    output = buffer.getvalue()
    assert "rolled back 1 transaction" in output
    assert "resume from phase" in output
