"""Tests for the word-search task and the extended device profiles."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.search import WordSearch
from repro.analytics.word_count import WordCount
from repro.baselines.uncompressed import UncompressedEngine
from repro.core.engine import EngineConfig, NTadocEngine
from repro.nvm.device import DeviceProfile
from repro.sequitur.compressor import compress_files

FILES = [
    ("f1", "apple banana cherry apple banana"),
    ("f2", "banana cherry banana date"),
    ("f3", "elderberry"),
    ("f4", ""),
    ("f5", "apple elderberry apple"),
]


@pytest.fixture(scope="module")
def corpus():
    return compress_files(FILES)


class TestWordSearch:
    def word_id(self, corpus, word):
        return corpus.vocab.index(word)

    def test_matches_oracle(self, corpus):
        queries = [self.word_id(corpus, w) for w in ("apple", "date", "cherry")]
        expected = WordSearch.reference(corpus.expand_files(), queries)
        run = NTadocEngine(corpus).run(WordSearch(queries))
        assert run.result == expected

    def test_uncompressed_matches_oracle(self, corpus):
        queries = [self.word_id(corpus, w) for w in ("banana", "elderberry")]
        expected = WordSearch.reference(corpus.expand_files(), queries)
        run = UncompressedEngine(corpus, EngineConfig()).run(WordSearch(queries))
        assert run.result == expected

    def test_specific_postings(self, corpus):
        apple = self.word_id(corpus, "apple")
        run = NTadocEngine(corpus).run(WordSearch([apple]))
        assert run.result[apple] == [0, 4]

    def test_word_absent_everywhere(self, corpus):
        # Query a word id that exists in the vocab of another corpus
        # context: use a real id but with no occurrences is impossible
        # (the dictionary only holds seen words), so query across files:
        elderberry = self.word_id(corpus, "elderberry")
        run = NTadocEngine(corpus).run(WordSearch([elderberry]))
        assert run.result[elderberry] == [2, 4]

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            WordSearch([])

    def test_search_cheaper_than_inverted_index(self, corpus):
        """Searching for one word must cost less than building the whole
        word->documents index."""
        from repro.analytics.inverted_index import InvertedIndex

        apple = self.word_id(corpus, "apple")
        search = NTadocEngine(corpus).run(WordSearch([apple]))
        index = NTadocEngine(corpus).run(InvertedIndex())
        assert search.traversal_ns < index.traversal_ns

    @settings(max_examples=20, deadline=None)
    @given(
        texts=st.lists(
            st.lists(st.sampled_from(["x", "y", "z", "w"]), max_size=30).map(
                " ".join
            ),
            min_size=1,
            max_size=5,
        ),
        n_queries=st.integers(1, 3),
    )
    def test_property_matches_oracle(self, texts, n_queries):
        files = [(f"f{i}", t) for i, t in enumerate(texts)]
        corpus = compress_files(files)
        if not corpus.vocab:
            return
        queries = list(range(min(n_queries, len(corpus.vocab))))
        expected = WordSearch.reference(corpus.expand_files(), queries)
        run = NTadocEngine(corpus).run(WordSearch(queries))
        assert run.result == expected


class TestFutureNvmProfiles:
    """ReRAM and PCM profiles (the paper's Section VI-F migration vision)."""

    def test_profiles_resolvable(self):
        assert DeviceProfile.by_name("reram").persistent
        assert DeviceProfile.by_name("pcm").persistent

    def test_byte_addressable(self):
        assert DeviceProfile.reram().byte_addressable
        assert DeviceProfile.pcm().byte_addressable

    def test_reram_finer_granularity_than_optane(self):
        assert DeviceProfile.reram().line_size < DeviceProfile.nvm().line_size

    def test_pcm_writes_slower_than_optane(self):
        assert DeviceProfile.pcm().write_ns > DeviceProfile.nvm().write_ns

    def test_engine_runs_on_future_devices(self, corpus):
        expected = NTadocEngine(corpus).run(WordCount()).result
        for device in ("reram", "pcm"):
            run = NTadocEngine(corpus, EngineConfig(device=device)).run(
                WordCount()
            )
            assert run.result == expected
            assert run.pool_device == device

    def test_relative_ordering(self, corpus):
        """PCM's slow SET/RESET writes make it the slowest candidate;
        ReRAM is competitive with Optane -- the kind of cross-architecture
        comparison the paper's migration plan envisions."""
        times = {}
        for device in ("reram", "nvm", "pcm"):
            run = NTadocEngine(corpus, EngineConfig(device=device)).run(
                WordCount()
            )
            times[device] = run.total_ns
        assert times["pcm"] > times["nvm"]
        assert times["pcm"] > times["reram"]
        assert times["reram"] < times["nvm"] * 1.1
