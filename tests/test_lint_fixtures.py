"""Golden-finding harness for the nvmlint fixture corpus.

Each ``tests/lint_fixtures/<case>/`` directory holds the sources for one
scenario plus ``expected.json``, the pinned ``(file, rule, line)`` list.
Cases are copied into a temporary directory before linting: files under
``tests/`` are exempt from every rule by design, and the fixtures must be
linted as product code.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.lint import lint_paths

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
CASES = sorted(p.name for p in FIXTURES.iterdir() if p.is_dir())


def run_case(case: str, tmp_path: Path):
    src = FIXTURES / case
    work = tmp_path / case
    work.mkdir()
    for py in sorted(src.glob("*.py")):
        shutil.copy(py, work / py.name)
    result = lint_paths([work])
    expected = json.loads((src / "expected.json").read_text())
    return result, expected


def test_corpus_has_cases():
    assert len(CASES) >= 10
    for case in CASES:
        assert (FIXTURES / case / "expected.json").exists()


@pytest.mark.parametrize("case", CASES)
def test_fixture_matches_golden(case, tmp_path):
    result, expected = run_case(case, tmp_path)
    got = sorted(
        (Path(f.path).name, f.rule, f.line) for f in result.findings
    )
    want = sorted((e["file"], e["rule"], e["line"]) for e in expected)
    rendered = "\n".join(f.render() for f in result.findings)
    assert got == want, f"findings:\n{rendered}"


TRUE_POSITIVE = [
    c
    for c in CASES
    if json.loads((FIXTURES / c / "expected.json").read_text())
]


@pytest.mark.parametrize("case", TRUE_POSITIVE)
def test_true_positive_cases_carry_evidence(case, tmp_path):
    """Interprocedural findings name their cross-function evidence."""
    result, expected = run_case(case, tmp_path)
    assert result.findings, "true-positive case produced no findings"
    for finding in result.findings:
        if finding.rule in ("ND008",):
            # The chain names each hop down to the origin marker event.
            assert " via " in finding.message
            assert ".py:" in finding.message
        if finding.rule in ("ND010",):
            assert "at" in finding.message and ".py:" in finding.message


def test_nd008_chain_names_both_modules(tmp_path):
    result, _ = run_case("nd008_cross", tmp_path)
    (finding,) = result.findings
    assert "a_mod.py:2" in finding.message  # origin marker write
    assert "persist_marker" in finding.message  # the hop
