"""Failure-injection tests: crashes at every stage of the pipeline.

These tests simulate power failures (``memory.crash()`` reverts to the
last flushed image) at chosen points and verify the Section IV-E recovery
contract: phase-level persistence resumes from the last completed phase,
operation-level persistence additionally rolls back the interrupted
transaction, and a restarted run produces the same results.
"""

import pytest

from repro.analytics.word_count import WordCount
from repro.core.dag import Dag
from repro.core.engine import EngineConfig, NTadocEngine
from repro.core.pruning import PrunedDag
from repro.core.recovery import next_phase, recover_pool
from repro.core.summation import summate_all
from repro.errors import CrashPoint, RecoveryError
from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory
from repro.nvm.persist import PhasePersistence, TransactionLog
from repro.nvm.pool import NvmPool
from repro.sequitur.compressor import compress_files


def fresh_pool(size=1 << 21):
    return NvmPool(SimulatedMemory(DeviceProfile.nvm(), size))


def small_corpus():
    return compress_files(
        [("f1", "alpha beta gamma alpha beta gamma delta"),
         ("f2", "delta gamma beta alpha alpha")]
    )


class TestNextPhase:
    def test_from_scratch(self):
        assert next_phase(None) == "initialization"

    def test_after_init(self):
        assert next_phase("initialization") == "traversal"

    def test_after_traversal(self):
        assert next_phase("traversal") == "done"

    def test_unknown_marker(self):
        with pytest.raises(RecoveryError):
            next_phase("bogus")


class TestCrashBeforeAnyFlush:
    def test_unrecoverable_reports_restart(self):
        pool = fresh_pool()
        pool.alloc_region("data", 64)
        pool.save_directory()  # never flushed
        pool.memory.crash()
        with pytest.raises(RecoveryError):
            recover_pool(pool.memory)


class TestCrashDuringInitialization:
    def test_resume_from_initialization(self):
        corpus = small_corpus()
        pool = fresh_pool()
        phases = PhasePersistence(pool)
        pool.flush()  # persist the empty pool + phase region

        # Crash midway through building the DAG pool (before the phase
        # checkpoint).
        dag = Dag(corpus)
        with pytest.raises(CrashPoint):
            PrunedDag.build(pool, corpus, dag, bounds=summate_all(dag))
            raise CrashPoint("power failure before init checkpoint")
        pool.memory.crash()

        report = recover_pool(pool.memory)
        assert report.last_completed_phase is None
        assert report.resume_phase == "initialization"
        assert report.pruned is None


class TestCrashDuringTraversal:
    def build_initialized_pool(self, corpus):
        pool = fresh_pool()
        phases = PhasePersistence(pool)
        dag = Dag(corpus)
        pruned = PrunedDag.build(pool, corpus, dag, bounds=summate_all(dag))
        pool.save_directory()
        phases.complete_phase("initialization")
        return pool, pruned

    def test_resume_from_traversal_with_intact_dag(self):
        corpus = small_corpus()
        pool, _ = self.build_initialized_pool(corpus)

        # Traversal scribbles weights, then the machine dies.
        pruned = PrunedDag.attach(pool)
        pruned.set_weight(0, 99)
        pool.memory.crash()

        report = recover_pool(pool.memory)
        assert report.last_completed_phase == "initialization"
        assert report.resume_phase == "traversal"
        assert report.pruned is not None
        # The un-flushed weight scribble was discarded with the phase.
        assert report.pruned.weight(0) == 0
        # The pruned DAG itself is intact.
        for rule in range(corpus.n_rules):
            assert report.pruned.raw_body(rule) == corpus.rules[rule]

    def test_rerun_after_recovery_matches_clean_run(self):
        corpus = small_corpus()
        clean = NTadocEngine(corpus).run(WordCount())

        pool, _ = self.build_initialized_pool(corpus)
        pool.memory.crash()
        report = recover_pool(pool.memory)
        assert report.resume_phase == "traversal"
        # The paper's recovery recomputes the phase; a fresh engine run
        # stands in for the recomputation and must agree.
        rerun = NTadocEngine(corpus).run(WordCount())
        assert rerun.result == clean.result


class TestOperationLevelRecovery:
    def test_interrupted_transaction_rolled_back(self):
        pool = fresh_pool()
        PhasePersistence(pool)
        data = pool.alloc_region("data", 64)
        pool.memory.write(data, b"baseline")
        log = TransactionLog(pool)
        pool.flush()

        tx = log.begin()
        tx.write(data, b"halfway!")
        pool.memory.crash()

        report = recover_pool(pool.memory)
        assert report.transactions_rolled_back == 1
        assert pool.memory.read(data, 8) == b"baseline"

    def test_committed_transaction_survives(self):
        pool = fresh_pool()
        PhasePersistence(pool)
        data = pool.alloc_region("data", 64)
        log = TransactionLog(pool)
        pool.flush()
        with log.transaction() as tx:
            tx.write(data, b"durable!")
        pool.memory.crash()

        report = recover_pool(pool.memory)
        assert report.transactions_rolled_back == 0
        assert pool.memory.read(data, 8) == b"durable!"


class TestEndToEndDurability:
    def test_completed_run_survives_crash(self):
        """After both phases complete, everything persists."""
        corpus = small_corpus()
        engine = NTadocEngine(corpus, EngineConfig(persistence="phase"))
        # Run through the engine; then simulate reopening its pool image.
        run = engine.run(WordCount())
        assert run.result  # sanity

    def test_phase_marker_sequence(self):
        pool = fresh_pool()
        phases = PhasePersistence(pool)
        with phases.phase("initialization"):
            pool.alloc_region("data", 64)
            pool.save_directory()
        with phases.phase("traversal"):
            pass
        pool.memory.crash()
        report = recover_pool(pool.memory)
        assert report.last_completed_phase == "traversal"
        assert report.resume_phase == "done"
        assert not report.needs_full_rebuild
