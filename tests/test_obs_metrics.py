"""Metrics registry: instruments, determinism, and the zero-cost contract.

The load-bearing guarantees pinned here:

* **Histogram algebra** -- power-of-two bucketing is merge-associative
  (counts and buckets exactly, sums to float tolerance), and the
  rank-based percentile readout brackets the true sample: the returned
  edge is a strict upper bound and (above bucket 0) at most 2x the
  rank-selected observation.  Checked property-based.
* **Byte-determinism** -- ``expose()`` and ``to_json()`` are insertion-
  order independent and identical across repeated identical engine runs.
* **Zero charged cost** -- metrics on vs off produces bit-identical
  simulated totals, results, and pool images outside the top-pinned
  ``__flightrec__`` window (the one region the recorder owns).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import task_by_name
from repro.core.engine import EngineConfig, NTadocEngine
from repro.datasets.generator import CorpusSpec, generate_corpus_files
from repro.obs.metrics import (
    OVERFLOW_BUCKET,
    Histogram,
    MetricsRegistry,
    attached,
    bucket_index,
    bucket_upper_edge,
    current_registry,
    inc,
    observe,
    set_gauge,
)
from repro.sequitur.compressor import compress_files


@pytest.fixture(scope="module")
def corpus():
    spec = CorpusSpec(n_files=12, tokens_per_file=150, vocab_size=60, seed=771)
    return compress_files(generate_corpus_files(spec))


observations = st.lists(
    st.floats(min_value=0.0, max_value=2.0**70, allow_nan=False),
    min_size=0,
    max_size=60,
)


def _hist(values) -> Histogram:
    hist = Histogram("h")
    for value in values:
        hist.observe(value)
    return hist


class TestHistogramProperties:
    @given(a=observations, b=observations, c=observations)
    @settings(max_examples=150, deadline=None)
    def test_merge_is_associative(self, a, b, c):
        left = _hist(a).merge(_hist(b)).merge(_hist(c))
        right = _hist(a).merge(_hist(b).merge(_hist(c)))
        assert left.count == right.count == len(a) + len(b) + len(c)
        assert left.buckets == right.buckets
        assert left.sum == pytest.approx(right.sum, rel=1e-12, abs=1e-9)

    @given(a=observations, b=observations)
    @settings(max_examples=100, deadline=None)
    def test_merge_matches_observing_everything(self, a, b):
        merged = _hist(a).merge(_hist(b))
        combined = _hist(a + b)
        assert merged.count == combined.count
        assert merged.buckets == combined.buckets

    @given(
        values=observations.filter(len),
        q=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_percentile_brackets_the_rank_sample(self, values, q):
        hist = _hist(values)
        rank = max(1, math.ceil(q / 100.0 * len(values)))
        true = sorted(values)[rank - 1]
        edge = hist.percentile(q)
        if edge == math.inf:
            # Overflow bucket: the sample is at least 2^63.
            assert true >= 2.0**63
        else:
            assert true < edge
            if edge > 1.0:
                # Power-of-two buckets: the edge overshoots by < 2x.
                assert true >= edge / 2

    @given(values=observations)
    @settings(max_examples=100, deadline=None)
    def test_buckets_partition_the_observations(self, values):
        hist = _hist(values)
        assert sum(hist.buckets.values()) == hist.count == len(values)
        for bucket, n in hist.buckets.items():
            assert 0 <= bucket <= OVERFLOW_BUCKET
            assert n > 0


class TestHistogramEdges:
    def test_empty_percentiles_are_zero(self):
        hist = Histogram("h")
        for q in (0.0, 50.0, 99.0, 100.0):
            assert hist.percentile(q) == 0.0
        assert hist.count == 0 and hist.buckets == {}

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(101.0)
        with pytest.raises(ValueError):
            Histogram("h").percentile(-0.1)

    def test_subunit_values_fill_bucket_zero(self):
        hist = _hist([0.0, 0.25, 0.999])
        assert hist.buckets == {0: 3}
        assert hist.percentile(100.0) == 1.0

    def test_overflow_bucket_reads_as_inf(self):
        hist = _hist([2.0**63, 2.0**64, 2.0**70])
        assert hist.buckets == {OVERFLOW_BUCKET: 3}
        assert hist.percentile(50.0) == math.inf
        assert bucket_upper_edge(OVERFLOW_BUCKET) == math.inf

    def test_bucket_rule_matches_docstring(self):
        # bucket k holds [2^(k-1), 2^k); bucket 0 holds [0, 1).
        assert bucket_index(0.0) == 0
        assert bucket_index(1.0) == 1
        assert bucket_index(1.999) == 1
        assert bucket_index(2.0) == 2
        assert bucket_index(2.0**62) == 63
        assert bucket_index(2.0**63) == OVERFLOW_BUCKET

    def test_merge_of_empties_is_empty(self):
        merged = Histogram("h").merge(Histogram("h"))
        assert merged.count == 0 and merged.buckets == {} and merged.sum == 0.0


class TestRegistryReadout:
    def _populate(self, registry: MetricsRegistry, order: int) -> None:
        ops = [
            lambda: registry.inc("ntadoc_runs_total", 2.0),
            lambda: registry.set_gauge("ntadoc_pool_resident", 4096.0),
            lambda: registry.observe("ntadoc_task_ns", 1500.0, task="wc"),
            lambda: registry.observe("ntadoc_task_ns", 0.5, task="wc"),
            lambda: registry.inc("ntadoc_events_total", 3.0, type="reopen"),
        ]
        if order:
            ops.reverse()
        for op in ops:
            op()

    def test_exposition_is_insertion_order_independent(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        self._populate(first, order=0)
        self._populate(second, order=1)
        assert first.expose() == second.expose()
        assert first.to_json() == second.to_json()

    def test_exposition_shape(self):
        registry = MetricsRegistry()
        registry.inc("ntadoc_runs_total", help="runs")
        registry.observe("ntadoc_task_ns", 3.0, task="wc")
        text = registry.expose()
        assert "# HELP ntadoc_runs_total runs\n" in text
        assert "# TYPE ntadoc_runs_total counter\n" in text
        assert "# TYPE ntadoc_task_ns histogram\n" in text
        assert 'ntadoc_task_ns_bucket{task="wc",le="+Inf"} 1' in text
        assert 'ntadoc_task_ns_count{task="wc"} 1' in text
        assert text.endswith("\n")

    def test_snapshot_percentiles_present(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 300.0):
            registry.observe("ntadoc_task_ns", value, task="wc")
        series = registry.snapshot()["histograms"]['ntadoc_task_ns{task="wc"}']
        assert series["count"] == 3
        assert series["p50"] == 4.0  # rank-2 sample 2.0 -> bucket edge 4
        assert series["p99"] == 512.0

    def test_counters_only_move_forward(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.inc("ntadoc_runs_total", -1.0)

    def test_module_helpers_noop_when_detached(self):
        assert current_registry() is None
        inc("x")
        set_gauge("y", 1.0)
        observe("z", 2.0)  # must not raise, must not create state

    def test_attached_nests_and_restores(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with attached(outer):
            inc("depth")
            with attached(inner):
                inc("depth")
            with attached(None):  # None is accepted and does nothing
                inc("depth")
        assert outer.counter("depth").value == 2.0
        assert inner.counter("depth").value == 1.0
        assert current_registry() is None


class TestEngineDeterminism:
    def test_identical_runs_expose_identical_bytes(self, corpus):
        readouts = []
        for _ in range(2):
            engine = NTadocEngine(corpus, EngineConfig())
            engine.run(task_by_name("word_count"))
            readouts.append((engine.metrics.expose(), engine.metrics.to_json()))
        assert readouts[0] == readouts[1]
        assert "ntadoc_task_ns" in readouts[0][0]

    def test_metrics_on_off_bit_identical(self, corpus):
        """Metrics on vs off: same charged ns, same results, and pool
        images equal outside the ``__flightrec__`` window (which only
        exists to differ)."""
        from repro.nvm.flightrec import FLIGHTREC_REGION, device_image

        images, totals, results = [], [], []
        for metrics in (True, False):
            engine = NTadocEngine(corpus, EngineConfig(metrics=metrics))
            run = engine.run_resilient(task_by_name("word_count"))
            state = engine.last_state
            offset, size = state.pool.get_region(FLIGHTREC_REGION)
            image = bytearray(device_image(state.pool_mem))
            image[offset : offset + size] = bytes(size)
            images.append(bytes(image))
            totals.append(run.total_ns)
            results.append(run.result)
        assert totals[0] == totals[1]
        assert results[0] == results[1]
        assert images[0] == images[1]

    def test_journal_feeds_registry(self, corpus):
        engine = NTadocEngine(corpus, EngineConfig())
        engine.run(task_by_name("word_count"))
        snapshot = engine.metrics.snapshot()
        fanout = {
            name: value
            for name, value in snapshot["counters"].items()
            if name.startswith("ntadoc_events_total")
        }
        assert fanout, "journal emission must increment ntadoc_events_total"
        assert sum(fanout.values()) == len(engine.journal.events)

    def test_metrics_off_leaves_no_registry(self, corpus):
        engine = NTadocEngine(corpus, EngineConfig(metrics=False))
        run = engine.run(task_by_name("word_count"))
        assert engine.metrics is None and engine.journal is None
        assert run.total_ns > 0
