"""Unit tests for the pool allocator and named-region pool."""

import pytest

from repro.errors import OutOfMemoryError, PoolLayoutError
from repro.nvm.allocator import PoolAllocator
from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory
from repro.nvm.pool import NvmPool


def make_mem(size=1 << 16):
    return SimulatedMemory(DeviceProfile.nvm(), size)


class TestPoolAllocator:
    def test_sequential_allocations_are_adjacent(self):
        mem = make_mem()
        alloc = PoolAllocator(mem, base=0, capacity=4096)
        a = alloc.alloc(64)
        b = alloc.alloc(64)
        assert b == a + 64

    def test_alignment(self):
        mem = make_mem()
        alloc = PoolAllocator(mem, base=0, capacity=4096)
        alloc.alloc(3)
        b = alloc.alloc(8, align=8)
        assert b % 8 == 0

    def test_exhaustion_raises(self):
        mem = make_mem()
        alloc = PoolAllocator(mem, base=0, capacity=128)
        alloc.alloc(100)
        with pytest.raises(OutOfMemoryError):
            alloc.alloc(100)

    def test_zero_size_rejected(self):
        alloc = PoolAllocator(make_mem(), base=0, capacity=128)
        with pytest.raises(ValueError):
            alloc.alloc(0)

    def test_free_then_realloc_reuses_block(self):
        mem = make_mem()
        alloc = PoolAllocator(mem, base=0, capacity=4096)
        a = alloc.alloc(64)
        alloc.free(a, 64)
        b = alloc.alloc(64)
        assert b == a

    def test_free_outside_region_rejected(self):
        alloc = PoolAllocator(make_mem(), base=0, capacity=128)
        with pytest.raises(ValueError):
            alloc.free(1000, 64)

    def test_accounting(self):
        alloc = PoolAllocator(make_mem(), base=0, capacity=4096)
        a = alloc.alloc(100)
        alloc.alloc(50)
        assert alloc.allocated_bytes == 150
        assert alloc.peak_bytes == 150
        alloc.free(a, 100)
        assert alloc.allocated_bytes == 50
        assert alloc.peak_bytes == 150

    def test_scattered_allocations_not_adjacent(self):
        mem = make_mem(1 << 20)
        alloc = PoolAllocator(mem, base=0, capacity=1 << 20, scatter=True)
        offsets = [alloc.alloc(16) for _ in range(8)]
        line = mem.profile.line_size
        lines = {off // line for off in offsets}
        assert len(lines) == 8  # every object on its own device line

    def test_scatter_is_deterministic(self):
        mem1 = make_mem(1 << 20)
        mem2 = make_mem(1 << 20)
        a1 = PoolAllocator(mem1, 0, 1 << 20, scatter=True, seed=7)
        a2 = PoolAllocator(mem2, 0, 1 << 20, scatter=True, seed=7)
        assert [a1.alloc(16) for _ in range(10)] == [a2.alloc(16) for _ in range(10)]

    def test_reset(self):
        alloc = PoolAllocator(make_mem(), base=64, capacity=1024)
        alloc.alloc(100)
        alloc.reset()
        assert alloc.top == 64
        assert alloc.allocated_bytes == 0

    def test_region_bounds_validated(self):
        with pytest.raises(ValueError):
            PoolAllocator(make_mem(size=1024), base=0, capacity=2048)


class TestNvmPool:
    def test_alloc_and_get_region(self):
        pool = NvmPool(make_mem())
        off = pool.alloc_region("dag", 512)
        assert pool.get_region("dag") == (off, 512)
        assert pool.has_region("dag")

    def test_duplicate_region_rejected(self):
        pool = NvmPool(make_mem())
        pool.alloc_region("dag", 512)
        with pytest.raises(PoolLayoutError):
            pool.alloc_region("dag", 512)

    def test_missing_region_raises(self):
        pool = NvmPool(make_mem())
        with pytest.raises(PoolLayoutError):
            pool.get_region("nope")

    def test_free_region(self):
        pool = NvmPool(make_mem())
        pool.alloc_region("tmp", 512)
        pool.free_region("tmp")
        assert not pool.has_region("tmp")

    def test_regions_start_after_header(self):
        pool = NvmPool(make_mem(), header_bytes=4096)
        off = pool.alloc_region("dag", 16)
        assert off >= 4096

    def test_directory_roundtrip(self):
        mem = make_mem()
        pool = NvmPool(mem)
        off = pool.alloc_region("dag", 512)
        pool.alloc_region("meta", 128)
        pool.save_directory()

        reopened = NvmPool(mem)
        reopened.load_directory()
        assert reopened.get_region("dag") == (off, 512)
        assert reopened.region_names() == ["dag", "meta"]

    def test_directory_restores_allocator_top(self):
        mem = make_mem()
        pool = NvmPool(mem)
        pool.alloc_region("dag", 512)
        pool.save_directory()

        reopened = NvmPool(mem)
        reopened.load_directory()
        new_off = reopened.allocator.alloc(64)
        dag_off, _ = reopened.get_region("dag")
        assert new_off >= dag_off + 512  # must not clobber existing region

    def test_load_bad_magic_raises(self):
        mem = make_mem()
        mem.write(0, b"\x00" * 64)
        pool = NvmPool(mem)
        with pytest.raises(PoolLayoutError):
            pool.load_directory()

    def test_directory_survives_crash_after_flush(self):
        mem = make_mem()
        pool = NvmPool(mem)
        pool.alloc_region("dag", 512)
        pool.flush()
        mem.crash()
        reopened = NvmPool(mem)
        reopened.load_directory()
        assert reopened.has_region("dag")

    def test_directory_lost_on_crash_without_flush(self):
        mem = make_mem()
        pool = NvmPool(mem)
        pool.alloc_region("dag", 512)
        pool.save_directory()  # written but never flushed
        mem.crash()
        with pytest.raises(PoolLayoutError):
            NvmPool(mem).load_directory()
