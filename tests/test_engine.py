"""Tests for engine internals: config validation, sizing, persistence
plumbing, strategy resolution, and measurement bookkeeping."""

import pytest

from repro.analytics.sequence_count import SequenceCount
from repro.analytics.word_count import WordCount
from repro.core.engine import (
    EngineConfig,
    NTadocEngine,
    check_pool_fits,
    run_task,
    serialized_size,
)
from repro.errors import ReproError
from repro.sequitur import serialization
from repro.sequitur.compressor import compress_files


@pytest.fixture(scope="module")
def corpus():
    files = [(f"f{i}", "epsilon zeta eta " * 12 + f"unique{i}") for i in range(6)]
    return compress_files(files)


class TestEngineConfig:
    def test_defaults_valid(self):
        config = EngineConfig()
        assert config.device == "nvm"
        assert config.persistence == "phase"

    def test_bad_persistence_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(persistence="eventually")

    def test_bad_traversal_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(traversal="sideways")

    def test_naive_implies_both_degradations(self):
        config = EngineConfig(naive=True)
        assert config.use_scattered_layout
        assert config.use_growable_structures

    def test_single_ablation_flags(self):
        assert EngineConfig(scattered_layout=True).use_scattered_layout
        assert not EngineConfig(scattered_layout=True).use_growable_structures
        assert EngineConfig(growable_structures=True).use_growable_structures

    def test_frozen(self):
        with pytest.raises(Exception):
            EngineConfig().device = "hdd"


class TestSizingAndBookkeeping:
    def test_pool_autosize_sufficient_for_all_tasks(self, corpus):
        from repro.analytics import ALL_TASKS

        for task_cls in ALL_TASKS:
            run = NTadocEngine(corpus).run(task_cls())
            assert run.pool_peak > 0

    def test_pool_bytes_override(self, corpus):
        run = NTadocEngine(
            corpus, EngineConfig(pool_bytes=1 << 22)
        ).run(WordCount())
        assert run.pool_peak < (1 << 22)

    def test_serialized_size_memoized(self, corpus):
        first = serialized_size(corpus)
        assert serialized_size(corpus) == first
        assert first == len(serialization.serialize(corpus))

    def test_check_pool_fits(self, corpus):
        run = NTadocEngine(corpus).run(WordCount())
        check_pool_fits(run)  # no raise
        run.pool_peak = 0
        with pytest.raises(ReproError):
            check_pool_fits(run)

    def test_run_task_convenience(self, corpus):
        run = run_task(corpus, WordCount())
        assert run.task == "word_count"


class TestStrategyResolution:
    def test_auto_topdown_for_few_files(self, corpus):
        run = NTadocEngine(corpus).run(WordCount())
        assert run.strategy == "topdown"

    def test_auto_bottomup_above_threshold(self, corpus):
        config = EngineConfig(bottomup_threshold=2)
        run = NTadocEngine(corpus, config).run(WordCount())
        assert run.strategy == "bottomup"

    def test_pinned_strategy_wins(self, corpus):
        config = EngineConfig(traversal="bottomup")
        run = NTadocEngine(corpus, config).run(WordCount())
        assert run.strategy == "bottomup"


class TestPersistencePlumbing:
    def test_none_persistence_skips_flushes(self, corpus):
        none = NTadocEngine(
            corpus, EngineConfig(device="dram", persistence="none")
        ).run(WordCount())
        phase = NTadocEngine(corpus).run(WordCount())
        assert none.pool_stats.flushed_lines == 0
        assert phase.pool_stats.flushed_lines > 0

    def test_operation_persistence_flushes_more(self, corpus):
        # op_batch=1 commits every operation; on this tiny corpus the
        # default batching can collapse to a single commit, whose flush
        # count ties the phase path's data+marker barriers.
        phase = NTadocEngine(corpus).run(WordCount())
        op = NTadocEngine(
            corpus, EngineConfig(persistence="operation", op_batch=1)
        ).run(WordCount())
        assert op.pool_stats.flush_ops > phase.pool_stats.flush_ops
        assert op.total_ns > phase.total_ns

    def test_op_batch_amortizes(self, corpus):
        fine = NTadocEngine(
            corpus, EngineConfig(persistence="operation", op_batch=1)
        ).run(WordCount())
        coarse = NTadocEngine(
            corpus, EngineConfig(persistence="operation", op_batch=32)
        ).run(WordCount())
        assert fine.pool_stats.flush_ops > coarse.pool_stats.flush_ops
        assert fine.total_ns > coarse.total_ns
        assert fine.result == coarse.result


class TestWorkloadKnobs:
    def test_ngram_n_changes_headtail_width(self, corpus):
        engine2 = NTadocEngine(corpus, EngineConfig(ngram_n=2))
        engine4 = NTadocEngine(corpus, EngineConfig(ngram_n=4))
        assert engine2._headtail_k == 1
        assert engine4._headtail_k == 3
        run2 = engine2.run(SequenceCount())
        run4 = engine4.run(SequenceCount())
        # 4-grams are strictly rarer than bigrams.
        assert sum(run4.result.values()) < sum(run2.result.values())

    def test_bounds_are_clamped(self, corpus):
        engine = NTadocEngine(corpus)
        vocab = len(corpus.vocab)
        explens = engine._dag.expansion_lengths()
        for rule, bound in enumerate(engine._bounds):
            assert bound <= vocab
            assert bound <= explens[rule]

    def test_disk_device_affects_init(self, corpus):
        fast = NTadocEngine(corpus, EngineConfig(disk="ssd")).run(WordCount())
        slow = NTadocEngine(corpus, EngineConfig(disk="hdd")).run(WordCount())
        assert slow.init_ns > fast.init_ns
        assert slow.result == fast.result
