"""End-to-end integration: disk artifacts, pool images, recovery, rerun.

These tests exercise the full production pipeline the way a deployment
would: text -> compressed artifact on disk -> engine run with a
file-backed NVM image -> power failure -> reopen from the image in a
"new process" (fresh objects) -> recover and resume.
"""

import pytest

from repro.analytics import ALL_TASKS, task_by_name
from repro.analytics.word_count import WordCount
from repro.baselines.uncompressed import UncompressedEngine
from repro.core.dag import Dag
from repro.core.engine import EngineConfig, NTadocEngine
from repro.core.pruning import PrunedDag
from repro.core.random_access import RandomAccessor
from repro.core.recovery import recover_pool
from repro.core.summation import summate_all
from repro.datasets import corpus_for, dataset_files
from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory
from repro.nvm.persist import PhasePersistence
from repro.nvm.pool import NvmPool
from repro.sequitur import serialization
from repro.sequitur.compressor import compress_files


class TestDiskArtifactPipeline:
    def test_text_to_results_via_disk(self, tmp_path):
        # 1. Write raw text files to disk.
        texts = {
            "alpha.txt": "shared preamble text alpha body alpha ending",
            "beta.txt": "shared preamble text beta body beta ending",
        }
        for name, text in texts.items():
            (tmp_path / name).write_text(text)
        # 2. Compress from disk and persist the artifact.
        from repro.sequitur.compressor import compress_paths

        corpus = compress_paths(sorted(tmp_path.glob("*.txt")))
        artifact = tmp_path / "corpus.ntdc"
        serialization.save(corpus, artifact)
        # 3. A "different process" loads the artifact and analyses it.
        loaded = serialization.load(artifact)
        run = NTadocEngine(loaded).run(WordCount())
        rendered = {loaded.vocab[w]: c for w, c in run.result.items()}
        assert rendered["shared"] == 2
        assert rendered["alpha"] == 2

    def test_all_tasks_on_generated_dataset(self):
        corpus = corpus_for("B", scale=0.05)
        token_files = corpus.expand_files()
        for task_cls in ALL_TASKS:
            nt = NTadocEngine(corpus).run(task_cls())
            base = UncompressedEngine(corpus, EngineConfig()).run(task_cls())
            assert nt.result == base.result, task_cls.name


class TestFileBackedPoolAcrossProcesses:
    def build_image(self, tmp_path, corpus):
        """Simulate process 1: build and persist a pool image."""
        image = tmp_path / "pool.img"
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 21)
        mem.attach_file(image)
        pool = NvmPool(mem)
        phases = PhasePersistence(pool)
        dag = Dag(corpus)
        with phases.phase("initialization"):
            PrunedDag.build(pool, corpus, dag, bounds=summate_all(dag))
            pool.save_directory()
        return image

    def test_reopen_in_new_process(self, tmp_path):
        corpus = compress_files(
            [("f1", "one two three one two three four"), ("f2", "four five")]
        )
        image = self.build_image(tmp_path, corpus)

        # Process 2: a completely fresh memory loads the image.
        mem2 = SimulatedMemory(DeviceProfile.nvm(), 1 << 21)
        mem2.attach_file(image, load=True)
        report = recover_pool(mem2)
        assert report.last_completed_phase == "initialization"
        assert report.pruned is not None
        for rule in range(corpus.n_rules):
            assert report.pruned.raw_body(rule) == corpus.rules[rule]

    def test_random_access_on_recovered_pool(self, tmp_path):
        corpus = compress_files(
            [("f", "the rain in spain falls mainly on the plain " * 6)]
        )
        image = self.build_image(tmp_path, corpus)
        mem2 = SimulatedMemory(DeviceProfile.nvm(), 1 << 21)
        mem2.attach_file(image, load=True)
        report = recover_pool(mem2)
        accessor = RandomAccessor(
            report.pruned, Dag(corpus).expansion_lengths()
        )
        tokens = corpus.expand_files()[0]
        assert accessor.slice(0, 10, 20) == tokens[10:20]


class TestDeterminismAcrossRuns:
    def test_dataset_generation_stable(self):
        assert dataset_files("A", scale=0.05) == dataset_files("A", scale=0.05)

    def test_engine_times_are_bit_identical(self):
        corpus = corpus_for("A", scale=0.1)
        runs = [NTadocEngine(corpus).run(WordCount()) for _ in range(3)]
        assert len({r.total_ns for r in runs}) == 1
        assert len({tuple(sorted(r.result.items())) for r in runs}) == 1

    def test_serialization_is_canonical(self):
        corpus = corpus_for("A", scale=0.05)
        blob1 = serialization.serialize(corpus)
        blob2 = serialization.serialize(
            serialization.deserialize(blob1)
        )
        assert blob1 == blob2


class TestCrossTaskConsistency:
    """Results of different tasks must be mutually consistent."""

    @pytest.fixture(scope="class")
    def runs(self):
        corpus = corpus_for("B", scale=0.04)
        engine = NTadocEngine(corpus)
        return corpus, {
            name: engine.run(task_by_name(name))
            for name in (
                "word_count",
                "sort",
                "term_vector",
                "inverted_index",
                "sequence_count",
            )
        }

    def test_sort_is_word_count_reordered(self, runs):
        _, results = runs
        assert dict(results["sort"].result) == results["word_count"].result

    def test_term_vector_counts_bounded_by_word_count(self, runs):
        _, results = runs
        totals = results["word_count"].result
        for vector in results["term_vector"].result:
            for word, count in vector:
                assert count <= totals[word]

    def test_inverted_index_covers_term_vectors(self, runs):
        _, results = runs
        index = results["inverted_index"].result
        for file_index, vector in enumerate(results["term_vector"].result):
            for word, _count in vector:
                assert file_index in index[word]

    def test_sequence_totals_bounded_by_tokens(self, runs):
        corpus, results = runs
        tokens = sum(len(f) for f in corpus.expand_files())
        assert sum(results["sequence_count"].result.values()) <= tokens
