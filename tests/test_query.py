"""Tests for the boolean query engine over compressed corpora."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.query import (
    And,
    Not,
    Or,
    QueryEngine,
    QueryError,
    Word,
    parse_query,
)
from repro.sequitur.compressor import compress_files

FILES = [
    ("f0", "error timeout in service alpha"),
    ("f1", "error retry in service beta"),
    ("f2", "success in service alpha"),
    ("f3", "error in service gamma"),
    ("f4", ""),
]


@pytest.fixture(scope="module")
def engine():
    return QueryEngine(compress_files(FILES))


class TestParser:
    def test_single_word(self):
        assert parse_query("error") == Word("error")

    def test_case_insensitive_keywords_lowercased_words(self):
        assert parse_query("ERROR") == Word("error")

    def test_and_binds_tighter_than_or(self):
        ast = parse_query("a OR b AND c")
        assert ast == Or(Word("a"), And(Word("b"), Word("c")))

    def test_parentheses_override(self):
        ast = parse_query("(a OR b) AND c")
        assert ast == And(Or(Word("a"), Word("b")), Word("c"))

    def test_not_prefix(self):
        assert parse_query("NOT a") == Not(Word("a"))
        assert parse_query("NOT NOT a") == Not(Not(Word("a")))

    def test_not_binds_tightest(self):
        ast = parse_query("NOT a AND b")
        assert ast == And(Not(Word("a")), Word("b"))

    @pytest.mark.parametrize(
        "bad",
        ["", "AND", "a AND", "a OR", "(a", "a)", "NOT", "a b AND", "( )"],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(QueryError):
            parse_query(bad)


class TestEvaluation:
    def test_single_word(self, engine):
        assert engine.query("error") == [0, 1, 3]

    def test_and(self, engine):
        assert engine.query("error AND retry") == [1]

    def test_or(self, engine):
        assert engine.query("timeout OR retry") == [0, 1]

    def test_not(self, engine):
        assert engine.query("NOT error") == [2, 4]

    def test_nested(self, engine):
        assert engine.query("error AND NOT (timeout OR retry)") == [3]

    def test_unknown_word_matches_nothing(self, engine):
        assert engine.query("zeppelin") == []
        assert engine.query("NOT zeppelin") == [0, 1, 2, 3, 4]

    def test_implicit_and_chain(self, engine):
        assert engine.query("service AND alpha AND error") == [0]

    def test_query_names(self, engine):
        assert engine.query_names("success") == ["f2"]

    def test_postings_memoized(self, engine):
        engine.query("error")
        spent = engine.sim_ns_spent
        engine.query("error AND error")
        assert engine.sim_ns_spent == spent  # no new postings resolved

    def test_costs_charged_for_new_words(self):
        engine = QueryEngine(compress_files(FILES))
        assert engine.sim_ns_spent == 0
        engine.query("error")
        assert engine.sim_ns_spent > 0


def _brute_force(files, ast):
    universe = set(range(len(files)))
    postings = {}
    for word in ast.words():
        postings[word] = {
            i for i, (_, text) in enumerate(files) if word in text.split()
        }
    return sorted(ast.evaluate(postings, universe))


_WORDS = ["error", "retry", "timeout", "alpha", "service", "nowhere"]


def _expr_strategy():
    leaf = st.sampled_from(_WORDS).map(Word)
    return st.recursive(
        leaf,
        lambda children: st.one_of(
            children.map(Not),
            st.tuples(children, children).map(lambda ab: And(*ab)),
            st.tuples(children, children).map(lambda ab: Or(*ab)),
        ),
        max_leaves=6,
    )


@settings(max_examples=30, deadline=None)
@given(ast=_expr_strategy())
def test_property_matches_brute_force(ast):
    engine = QueryEngine(compress_files(FILES))
    rendered = _render(ast)
    assert engine.query(rendered) == _brute_force(FILES, ast)


def _render(node) -> str:
    if isinstance(node, Word):
        return node.word
    if isinstance(node, Not):
        return f"NOT ( {_render(node.operand)} )"
    op = "AND" if isinstance(node, And) else "OR"
    return f"( {_render(node.left)} ) {op} ( {_render(node.right)} )"
