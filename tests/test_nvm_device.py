"""Unit tests for device profiles."""

import pytest

from repro.nvm.device import DeviceProfile


class TestProfiles:
    def test_builtin_profiles_exist(self):
        for name in ("dram", "nvm", "ssd", "hdd"):
            profile = DeviceProfile.by_name(name)
            assert profile.name == name
            assert profile.line_size > 0

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            DeviceProfile.by_name("tape")

    def test_nvm_granularity_is_256_bytes(self):
        """The paper's 3D-XPoint media granularity (Section III-A)."""
        assert DeviceProfile.nvm().line_size == 256

    def test_nvm_write_slower_than_read(self):
        """Asymmetric read/write latency (Section II, 'NVM device')."""
        nvm = DeviceProfile.nvm()
        assert nvm.write_ns > nvm.read_ns

    def test_latency_ordering_dram_nvm_ssd_hdd(self):
        profiles = [DeviceProfile.by_name(n) for n in ("dram", "nvm", "ssd", "hdd")]
        latencies = [p.read_ns for p in profiles]
        assert latencies == sorted(latencies)

    def test_nvm_read_close_to_dram(self):
        """NVM read latency is DRAM-like; well under SSD."""
        assert DeviceProfile.nvm().read_ns < 10 * DeviceProfile.dram().read_ns
        assert DeviceProfile.nvm().read_ns < DeviceProfile.ssd().read_ns / 10

    def test_dram_is_volatile_others_persistent(self):
        assert not DeviceProfile.dram().persistent
        for name in ("nvm", "ssd", "hdd"):
            assert DeviceProfile.by_name(name).persistent

    def test_byte_addressability(self):
        assert DeviceProfile.dram().byte_addressable
        assert DeviceProfile.nvm().byte_addressable
        assert not DeviceProfile.ssd().byte_addressable
        assert not DeviceProfile.hdd().byte_addressable

    def test_sequential_discount(self):
        for name in ("dram", "nvm", "ssd", "hdd"):
            profile = DeviceProfile.by_name(name)
            assert profile.seq_read_ns < profile.read_ns
            assert profile.seq_write_ns < profile.write_ns


class TestLineGeometry:
    def test_line_of(self):
        nvm = DeviceProfile.nvm()
        assert nvm.line_of(0) == 0
        assert nvm.line_of(255) == 0
        assert nvm.line_of(256) == 1

    def test_lines_spanned_single(self):
        nvm = DeviceProfile.nvm()
        assert list(nvm.lines_spanned(0, 1)) == [0]
        assert list(nvm.lines_spanned(10, 100)) == [0]

    def test_lines_spanned_crossing(self):
        nvm = DeviceProfile.nvm()
        assert list(nvm.lines_spanned(250, 10)) == [0, 1]
        assert list(nvm.lines_spanned(0, 256 * 3)) == [0, 1, 2]

    def test_lines_spanned_empty(self):
        assert list(DeviceProfile.nvm().lines_spanned(100, 0)) == []

    def test_lines_spanned_exact_boundary(self):
        nvm = DeviceProfile.nvm()
        assert list(nvm.lines_spanned(256, 256)) == [1]
