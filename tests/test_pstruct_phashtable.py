"""Unit and property tests for the persistent hash table (Fig. 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError
from repro.nvm.allocator import PoolAllocator
from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory
from repro.pstruct.phashtable import PHashTable, hash64


def make_allocator(size=1 << 22):
    mem = SimulatedMemory(DeviceProfile.nvm(), size)
    return PoolAllocator(mem, base=0, capacity=size)


class TestHash64:
    def test_deterministic(self):
        assert hash64(12345) == hash64(12345)

    def test_spreads_consecutive_keys(self):
        hashes = {hash64(i) & 0xFF for i in range(100)}
        assert len(hashes) > 50  # low bits well-mixed

    def test_fits_in_64_bits(self):
        assert 0 <= hash64(2**64 - 1) < 2**64


class TestBasics:
    def test_put_get(self):
        table = PHashTable.create(make_allocator(), expected_entries=16)
        table.put(10, 100)
        assert table.get(10) == 100
        assert len(table) == 1

    def test_get_missing_returns_default(self):
        table = PHashTable.create(make_allocator(), expected_entries=16)
        assert table.get(99) is None
        assert table.get(99, -1) == -1

    def test_put_overwrites(self):
        table = PHashTable.create(make_allocator(), expected_entries=16)
        table.put(1, 10)
        table.put(1, 20)
        assert table.get(1) == 20
        assert len(table) == 1

    def test_add_accumulates(self):
        table = PHashTable.create(make_allocator(), expected_entries=16)
        assert table.add(7, 3) == 3
        assert table.add(7, 4) == 7
        assert table.get(7) == 7

    def test_negative_values_roundtrip(self):
        table = PHashTable.create(make_allocator(), expected_entries=16)
        table.put(1, -42)
        assert table.get(1) == -42

    def test_contains(self):
        table = PHashTable.create(make_allocator(), expected_entries=16)
        table.put(5, 1)
        assert 5 in table
        assert 6 not in table

    def test_delete(self):
        table = PHashTable.create(make_allocator(), expected_entries=16)
        table.put(5, 1)
        assert table.delete(5)
        assert 5 not in table
        assert len(table) == 0
        assert not table.delete(5)

    def test_reinsert_after_delete(self):
        table = PHashTable.create(make_allocator(), expected_entries=16)
        table.put(5, 1)
        table.delete(5)
        table.put(5, 2)
        assert table.get(5) == 2
        assert len(table) == 1

    def test_items_and_to_dict(self):
        table = PHashTable.create(make_allocator(), expected_entries=64)
        expected = {i: i * i for i in range(40)}
        for key, value in expected.items():
            table.put(key, value)
        assert table.to_dict() == expected

    def test_capacity_power_of_two(self):
        table = PHashTable.create(make_allocator(), expected_entries=100)
        assert table.capacity & (table.capacity - 1) == 0
        assert table.capacity >= 100 / 0.7

    def test_invalid_expected_entries(self):
        with pytest.raises(ValueError):
            PHashTable.create(make_allocator(), expected_entries=0)


class TestCapacitySemantics:
    def test_presized_table_never_rehashes(self):
        table = PHashTable.create(make_allocator(), expected_entries=200)
        for i in range(200):
            table.put(i, i)
        assert table.reconstructions == 0

    def test_fixed_table_overflow_raises(self):
        table = PHashTable.create(make_allocator(), expected_entries=4)
        with pytest.raises(CapacityError):
            for i in range(100):
                table.put(i, i)

    def test_growable_table_rehashes(self):
        table = PHashTable.create(
            make_allocator(), expected_entries=4, growable=True
        )
        for i in range(200):
            table.put(i, i)
        assert len(table) == 200
        assert table.reconstructions >= 3
        assert table.to_dict() == {i: i for i in range(200)}

    def test_rehash_costs_more_than_presized(self):
        """Upper-bound pre-sizing removes reconstruction traffic (SectionIV-C)."""
        alloc_sized = make_allocator()
        sized = PHashTable.create(alloc_sized, expected_entries=512)
        for i in range(500):
            sized.put(i, i)
        sized_cost = alloc_sized.memory.clock.ns

        alloc_grow = make_allocator()
        grow = PHashTable.create(alloc_grow, expected_entries=4, growable=True)
        for i in range(500):
            grow.put(i, i)
        grow_cost = alloc_grow.memory.clock.ns
        assert grow_cost > 1.5 * sized_cost

    def test_tombstones_count_toward_load(self):
        table = PHashTable.create(make_allocator(), expected_entries=8)
        # churn below the live-count cap but above it with tombstones
        with pytest.raises(CapacityError):
            for i in range(1000):
                table.put(i, i)
                table.delete(i)


class TestCollisionBehaviour:
    def test_colliding_keys_all_stored(self):
        table = PHashTable.create(make_allocator(), expected_entries=64)
        capacity = table.capacity
        # Craft keys whose initial probe slot collides.
        base = 1
        colliders = [base]
        candidate = base + 1
        while len(colliders) < 5 and candidate < 100000:
            if (hash64(candidate) & (capacity - 1)) == (
                hash64(base) & (capacity - 1)
            ):
                colliders.append(candidate)
            candidate += 1
        for key in colliders:
            table.put(key, key * 2)
        for key in colliders:
            assert table.get(key) == key * 2

    def test_probe_sequence_covers_table(self):
        """Triangular probing on a power-of-two table is a permutation."""
        capacity = 64
        slots = {(0 + (i * (i + 1)) // 2) % capacity for i in range(capacity)}
        assert len(slots) == capacity


class TestPersistence:
    def test_attach_reopens_contents(self):
        alloc = make_allocator()
        table = PHashTable.create(alloc, expected_entries=32)
        table.put(3, 33)
        reopened = PHashTable.attach(alloc, table.header_offset)
        assert reopened.get(3) == 33
        assert len(reopened) == 1

    def test_attach_after_rehash(self):
        alloc = make_allocator()
        table = PHashTable.create(alloc, expected_entries=4, growable=True)
        for i in range(50):
            table.put(i, i)
        reopened = PHashTable.attach(alloc, table.header_offset)
        assert reopened.to_dict() == {i: i for i in range(50)}

    def test_survives_flush_and_crash(self):
        alloc = make_allocator()
        table = PHashTable.create(alloc, expected_entries=32)
        table.put(1, 11)
        alloc.memory.flush()
        alloc.memory.crash()
        reopened = PHashTable.attach(alloc, table.header_offset)
        assert reopened.get(1) == 11


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "add", "delete", "get"]),
            st.integers(0, 30),
            st.integers(-1000, 1000),
        ),
        max_size=80,
    )
)
def test_property_matches_python_dict(ops):
    """PHashTable behaves exactly like a dict under a random op mix."""
    table = PHashTable.create(make_allocator(), expected_entries=8, growable=True)
    model: dict[int, int] = {}
    for op, key, value in ops:
        if op == "put":
            table.put(key, value)
            model[key] = value
        elif op == "add":
            table.add(key, value)
            model[key] = model.get(key, 0) + value
        elif op == "delete":
            assert table.delete(key) == (key in model)
            model.pop(key, None)
        else:
            assert table.get(key, 0) == model.get(key, 0)
    assert table.to_dict() == model
    assert len(table) == len(model)
