"""Differential equivalence of the batched and per-line cost models.

``SimulatedMemory`` charges every access through one of two
implementations: the per-line reference loop (``batched=False``) and the
run-length batch fast path (``batched=True``, the default).  The batch
path exists purely for wall-clock speed -- simulated time, statistics,
cache state, wear and buffer contents must be *identical*, or every
figure built on the simulator silently drifts.

This suite replays randomized access traces (reads, writes, fills,
flushes, crashes; aligned and unaligned spans; single-byte to multi-line)
through a reference memory and a batched memory and asserts the complete
observable state matches exactly.  All memory-op charges are
integer-valued nanoseconds, so the closed-form run sums are bitwise equal
to the per-line additions -- ``==`` on ``clock.ns``, not ``approx``.
Tiny caches (down to a single line) force heavy eviction traffic,
including the corner where an eviction victim is re-touched later inside
the same span.
"""

from __future__ import annotations

import random

import pytest

from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory

_PROFILES = ("nvm", "dram", "ssd", "reram", "pcm")
_CACHE_LINES = (1, 2, 3, 8, 64)
_SEEDS_PER_CONFIG = 9
_DEVICE_LINES = 64  # small device -> frequent line reuse and conflicts

CASES = [
    (profile, cache_lines, seed)
    for profile in _PROFILES
    for cache_lines in _CACHE_LINES
    for seed in range(_SEEDS_PER_CONFIG)
]
assert len(CASES) >= 200


def _random_trace(rng: random.Random, size: int, line_size: int) -> list[tuple]:
    """A randomized op sequence exercising every span shape."""
    ops: list[tuple] = []
    for _ in range(rng.randrange(40, 80)):
        roll = rng.random()
        if roll < 0.90:
            offset = rng.randrange(size)
            if rng.random() < 0.3:
                offset -= offset % line_size  # line-aligned start
            max_span = line_size * rng.choice((1, 1, 1, 2, 4, 9, 40))
            length = min(rng.randrange(max_span + 1), size - offset)
            if rng.random() < 0.2:
                length -= length % line_size  # line-aligned end (maybe 0)
            kind = rng.random()
            if kind < 0.40:
                ops.append(("read", offset, length))
            elif kind < 0.85:
                ops.append(("write", offset, rng.randbytes(length)))
            else:
                ops.append(("fill", offset, length, rng.randrange(256)))
        elif roll < 0.97:
            ops.append(("flush",))
        else:
            ops.append(("crash",))
    return ops


def _replay(mem: SimulatedMemory, ops: list[tuple]) -> None:
    for op in ops:
        if op[0] == "read":
            mem.read(op[1], op[2])
        elif op[0] == "write":
            mem.write(op[1], op[2])
        elif op[0] == "fill":
            mem.fill(op[1], op[2], op[3])
        elif op[0] == "flush":
            mem.flush()
        else:
            mem.crash()


def _state(mem: SimulatedMemory) -> dict:
    """Every piece of observable simulator state."""
    return {
        "ns": mem.clock.ns,
        "stats": mem.stats.as_dict(),
        "dirty_lines": set(mem._dirty_lines),
        "media_lines": set(mem._media_lines),
        "last_media_line": mem._last_media_line,
        "evict_programmed": set(mem._evict_programmed),
        "cache": list(mem._cache._lines.items()),  # content + LRU order
        "wear": dict(mem.wear),
        "buffer": mem.peek(0, mem.size),
    }


def _make_pair(
    profile_name: str, cache_lines: int
) -> tuple[SimulatedMemory, SimulatedMemory, int]:
    profile = DeviceProfile.by_name(profile_name)
    size = profile.line_size * _DEVICE_LINES
    kwargs = dict(
        size=size,
        cache_bytes=profile.line_size * cache_lines,
        track_wear=True,
    )
    reference = SimulatedMemory(profile, batched=False, **kwargs)
    batched = SimulatedMemory(profile, batched=True, **kwargs)
    return reference, batched, size


@pytest.mark.parametrize("profile_name,cache_lines,seed", CASES)
def test_randomized_trace_equivalence(profile_name, cache_lines, seed):
    reference, batched, size = _make_pair(profile_name, cache_lines)
    rng = random.Random(f"{profile_name}-{cache_lines}-{seed}")
    ops = _random_trace(rng, size, reference.profile.line_size)
    _replay(reference, ops)
    _replay(batched, ops)
    assert _state(batched) == _state(reference)


def _random_rmw_trace(
    rng: random.Random, size: int, line_size: int
) -> list[tuple]:
    """Ops mixing plain accesses with fused scalar-field accessors."""
    ops: list[tuple] = []
    for _ in range(rng.randrange(30, 60)):
        roll = rng.random()
        if roll < 0.30:
            field = rng.choice((4, 8))
            offset = rng.randrange(size - field)
            if rng.random() < 0.7:
                offset -= offset % field  # aligned (the common layout)
            ops.append(("rmw", offset, field, rng.randrange(1, 1000)))
        elif roll < 0.45:
            field = rng.choice((4, 8))
            sites = [
                (rng.randrange(size - field), rng.randrange(1, 50))
                for _ in range(rng.randrange(1, 30))
            ]
            ops.append(("rmw_each", field, sites))
        elif roll < 0.60:
            field = rng.choice((1, 2, 4, 8))
            offset = rng.randrange(size - field)
            if rng.random() < 0.7:
                offset -= offset % field
            ops.append(("ruint", offset, field))
        elif roll < 0.75:
            field = rng.choice((1, 2, 4, 8))
            offset = rng.randrange(size - field)
            if rng.random() < 0.7:
                offset -= offset % field
            ops.append(("wuint", offset, field, rng.randrange(1 << (8 * field))))
        else:
            offset = rng.randrange(size)
            length = min(rng.randrange(line_size * 3 + 1), size - offset)
            if rng.random() < 0.5:
                ops.append(("read", offset, length))
            else:
                ops.append(("write", offset, rng.randbytes(length)))
    return ops


def _replay_rmw(mem: SimulatedMemory, ops: list[tuple], fused: bool) -> None:
    for op in ops:
        if op[0] == "rmw":
            _, offset, field, delta = op
            if fused:
                mem.rmw_add(offset, field, delta)
            else:
                value = int.from_bytes(mem.read(offset, field), "little") + delta
                mem.write(offset, value.to_bytes(field, "little"))
        elif op[0] == "rmw_each":
            _, field, sites = op
            if fused:
                mem.rmw_add_each(sites, field)
            else:
                for offset, delta in sites:
                    value = (
                        int.from_bytes(mem.read(offset, field), "little") + delta
                    )
                    mem.write(offset, value.to_bytes(field, "little"))
        elif op[0] == "ruint":
            _, offset, field = op
            if fused:
                got = mem.read_uint(offset, field)
            else:
                got = int.from_bytes(mem.read(offset, field), "little")
            assert got == int.from_bytes(mem.peek(offset, field), "little")
        elif op[0] == "wuint":
            _, offset, field, value = op
            if fused:
                mem.write_uint(offset, field, value)
            else:
                mem.write(offset, value.to_bytes(field, "little"))
        else:
            _replay(mem, [op])


RMW_CASES = [
    (profile, cache_lines, seed)
    for profile in _PROFILES
    for cache_lines in (1, 2, 8)
    for seed in range(5)
]


@pytest.mark.parametrize("profile_name,cache_lines,seed", RMW_CASES)
def test_fused_rmw_equivalence(profile_name, cache_lines, seed):
    """rmw_add / rmw_add_each == the explicit read+write sequence.

    The reference memory (per-line model) replays every RMW as a literal
    read followed by a write; the batched memory uses the fused paths.
    Unaligned sites exercise the line-straddling fallback; 1-line caches
    force the read half to evict on nearly every site.
    """
    reference, batched, size = _make_pair(profile_name, cache_lines)
    rng = random.Random(f"rmw-{profile_name}-{cache_lines}-{seed}")
    ops = _random_rmw_trace(rng, size, reference.profile.line_size)
    _replay_rmw(reference, ops, fused=False)
    _replay_rmw(batched, ops, fused=True)
    assert _state(batched) == _state(reference)


def test_fused_rmw_reference_mode_matches_too():
    """With batched=False, the fused APIs fall back to literal
    read+write -- the reference model stays the executable spec."""
    profile = DeviceProfile.nvm()
    size = profile.line_size * _DEVICE_LINES
    kwargs = dict(size=size, cache_bytes=profile.line_size * 2, track_wear=True)
    unbatched_fused = SimulatedMemory(profile, batched=False, **kwargs)
    unbatched_explicit = SimulatedMemory(profile, batched=False, **kwargs)
    ops = _random_rmw_trace(random.Random("ref-mode"), size, profile.line_size)
    _replay_rmw(unbatched_fused, ops, fused=True)
    _replay_rmw(unbatched_explicit, ops, fused=False)
    assert _state(unbatched_fused) == _state(unbatched_explicit)


class TestDirectedCorners:
    """Hand-picked span shapes the random generator hits only by luck."""

    def _both(self, ops, profile_name="nvm", cache_lines=2):
        reference, batched, _ = self._pair = _make_pair(profile_name, cache_lines)
        _replay(reference, ops)
        _replay(batched, ops)
        assert _state(batched) == _state(reference)

    def test_zero_size_ops(self):
        self._both([("read", 100, 0), ("write", 100, b""), ("fill", 100, 0, 7)])

    def test_full_line_overwrite_skips_fetch(self):
        ls = 256
        self._both(
            [
                ("write", 0, b"a" * ls),
                ("flush",),
                ("write", 0, b"b" * ls),  # covered: no fetch despite media
                ("write", ls + 1, b"c" * (ls - 2)),  # unaligned both ends
            ]
        )

    def test_span_wider_than_cache(self):
        # 10-line span through a 1-line cache: every line evicts its
        # predecessor, and the write-backs interleave with the fetches.
        self._both(
            [("write", 0, b"x" * 2560), ("read", 0, 2560), ("write", 128, b"y" * 2300)],
            cache_lines=1,
        )

    def test_victim_retouched_in_same_span(self):
        # Line 0 is dirty in a 1-line cache; a span over lines 0..3 first
        # hits line 0, evicts it at line 1, and the no-fetch decision for
        # later lines must see the eviction's media update.
        self._both(
            [
                ("write", 0, b"a" * 256),
                ("write", 0, b"b" * 1024),
                ("read", 0, 1024),
            ],
            cache_lines=1,
        )

    def test_sequential_discount_across_calls(self):
        ls = 256
        self._both(
            [
                ("read", 0, ls),       # miss line 0
                ("read", ls, ls),      # miss line 1, sequential
                ("read", 10 * ls, ls), # random jump
                ("read", 11 * ls, 3 * ls),  # sequential continuation run
            ]
        )

    def test_flush_then_rewrite_wears_once_per_program(self):
        self._both(
            [
                ("write", 0, b"a" * 256),
                ("flush",),
                ("write", 0, b"b" * 256),
                ("flush",),
            ]
        )


def test_cpu_interleaved_traces_stay_close():
    """Mixed cpu()/memory traces: the clock holds fractional ns, where
    float addition order can differ by ulps between the two paths.  The
    drift must stay at rounding-noise level."""
    reference, batched, size = _make_pair("nvm", 2)
    rng = random.Random(20240806)
    ops = _random_trace(rng, size, reference.profile.line_size)
    for mem in (reference, batched):
        replay_rng = random.Random(1)
        for op in ops:
            mem.clock.cpu(replay_rng.randrange(5))
            _replay(mem, [op])
    assert batched.clock.ns == pytest.approx(reference.clock.ns, rel=1e-12)
    ref_state = _state(reference)
    fast_state = _state(batched)
    for key in ("dirty_lines", "media_lines", "wear", "buffer", "cache"):
        assert fast_state[key] == ref_state[key]
