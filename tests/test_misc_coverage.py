"""Coverage for remaining small surfaces: streaming I/O charge, pool
region registration, timer wall clock, CLI reproduce, sequitur API edges."""

import pytest

from repro.cli import main
from repro.errors import PoolLayoutError
from repro.metrics.timer import PhaseTimeline
from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedClock, SimulatedMemory, charge_sequential_io
from repro.nvm.pool import NvmPool
from repro.sequitur.sequitur import Sequitur


class TestChargeSequentialIO:
    def test_zero_bytes_free(self):
        clock = SimulatedClock()
        assert charge_sequential_io(clock, DeviceProfile.ssd(), 0) == 0.0
        assert clock.ns == 0.0

    def test_first_line_random_rest_sequential(self):
        clock = SimulatedClock()
        ssd = DeviceProfile.ssd()
        cost = charge_sequential_io(clock, ssd, ssd.line_size * 3)
        assert cost == pytest.approx(ssd.read_ns + 2 * ssd.seq_read_ns)
        assert clock.ns == pytest.approx(cost)

    def test_write_uses_write_rates(self):
        clock = SimulatedClock()
        ssd = DeviceProfile.ssd()
        cost = charge_sequential_io(clock, ssd, ssd.line_size, write=True)
        assert cost == pytest.approx(ssd.write_ns)

    def test_partial_line_rounds_up(self):
        clock = SimulatedClock()
        nvm = DeviceProfile.nvm()
        cost = charge_sequential_io(clock, nvm, 1)
        assert cost == pytest.approx(nvm.read_ns)

    def test_exact_line_multiple_adds_no_padding_line(self):
        nvm = DeviceProfile.nvm()
        exact = charge_sequential_io(SimulatedClock(), nvm, nvm.line_size * 4)
        assert exact == pytest.approx(nvm.read_ns + 3 * nvm.seq_read_ns)
        one_over = charge_sequential_io(
            SimulatedClock(), nvm, nvm.line_size * 4 + 1
        )
        assert one_over == pytest.approx(nvm.read_ns + 4 * nvm.seq_read_ns)

    def test_single_full_line_charges_base_rate_only(self):
        nvm = DeviceProfile.nvm()
        for write in (False, True):
            cost = charge_sequential_io(
                SimulatedClock(), nvm, nvm.line_size, write=write
            )
            assert cost == pytest.approx(nvm.write_ns if write else nvm.read_ns)


class TestPoolRegionRegistration:
    def test_register_and_reload(self):
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 16)
        pool = NvmPool(mem)
        offset = pool.allocator.alloc(128)
        pool.register_region("manual", offset, 128)
        assert pool.get_region("manual") == (offset, 128)
        pool.flush()
        reopened = NvmPool(mem)
        reopened.load_directory()
        assert reopened.get_region("manual") == (offset, 128)

    def test_duplicate_registration_rejected(self):
        pool = NvmPool(SimulatedMemory(DeviceProfile.nvm(), 1 << 16))
        pool.alloc_region("x", 64)
        with pytest.raises(PoolLayoutError):
            pool.register_region("x", 0, 64)


class TestTimerWallClock:
    def test_wall_time_recorded(self):
        clock = SimulatedClock()
        timeline = PhaseTimeline(clock)
        with timeline.phase("p"):
            clock.advance(1)
        record = timeline.records[0]
        assert record.wall_s >= 0.0
        assert record.name == "p"


class TestSequiturApiEdges:
    def test_push_all_equals_pushes(self):
        a = Sequitur()
        a.push_all([1, 2, 1, 2])
        b = Sequitur()
        for token in [1, 2, 1, 2]:
            b.push(token)
        assert a.freeze() == b.freeze()

    def test_rule_count_property(self):
        seq = Sequitur()
        assert seq.rule_count == 1
        seq.push_all(list("xyxy"))
        assert seq.rule_count == 2

    def test_freeze_is_repeatable(self):
        seq = Sequitur()
        seq.push_all(list("abcabc"))
        assert seq.freeze() == seq.freeze()


class TestCliReproduce:
    def test_reproduce_pruning_small_scale(self, capsys):
        assert main(["reproduce", "pruning", "--scale", "0.06"]) == 0
        captured = capsys.readouterr().out
        assert "Section IV-B" in captured
        assert "Best single rule" in captured

    def test_reproduce_table1_small_scale(self, capsys):
        assert main(["reproduce", "table1", "--scale", "0.06"]) == 0
        assert "TABLE I" in capsys.readouterr().out
