"""Property-based failure injection: crash anywhere, recover consistently.

The contract under test (Section IV-E): after a power failure, a pool
reverts exactly to its last flushed state -- no torn values, no lost
committed transactions, no surviving uncommitted ones -- regardless of
where in an operation stream the failure lands.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recovery import recover_pool
from repro.errors import CrashPoint, RecoveryError
from repro.nvm.device import DeviceProfile
from repro.nvm.faults import FaultPlan, TornFlush
from repro.nvm.memory import SimulatedMemory
from repro.nvm.persist import PhasePersistence, TransactionLog
from repro.nvm.pool import NvmPool
from repro.pstruct.phashtable import PHashTable
from repro.pstruct.pvector import PVector


def fresh_pool(size=1 << 18):
    pool = NvmPool(SimulatedMemory(DeviceProfile.nvm(), size))
    PhasePersistence(pool)  # ensure a phase region exists
    return pool


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 50), st.integers(-100, 100)), max_size=60
    ),
    flush_period=st.integers(1, 10),
    crash_at=st.integers(0, 60),
)
def test_hashtable_state_reverts_to_last_flush(ops, flush_period, crash_at):
    """A wear-free model check: whatever was true at the last flush is
    exactly what survives the crash -- nothing more, nothing less."""
    pool = fresh_pool()
    table = PHashTable.create(pool.allocator, expected_entries=64, growable=True)
    pool.flush()

    model_at_flush: dict[int, int] = {}
    model_now: dict[int, int] = {}
    for index, (key, value) in enumerate(ops):
        if index == crash_at:
            break
        table.put(key, value)
        model_now[key] = value
        if index % flush_period == flush_period - 1:
            pool.flush()
            model_at_flush = dict(model_now)
    pool.memory.crash()

    recovered = PHashTable.attach(pool.allocator, table.header_offset)
    assert recovered.to_dict() == model_at_flush


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(st.integers(0, 2**32 - 1), max_size=50),
    flush_period=st.integers(1, 8),
    crash_at=st.integers(0, 50),
)
def test_vector_state_reverts_to_last_flush(values, flush_period, crash_at):
    pool = fresh_pool()
    vector = PVector.create(pool.allocator, capacity=64, growable=True)
    pool.flush()

    model_at_flush: list[int] = []
    model_now: list[int] = []
    for index, value in enumerate(values):
        if index == crash_at:
            break
        vector.append(value)
        model_now.append(value)
        if index % flush_period == flush_period - 1:
            pool.flush()
            model_at_flush = list(model_now)
    pool.memory.crash()

    recovered = PVector.attach(pool.allocator, vector.header_offset)
    assert recovered.to_list() == model_at_flush


@settings(max_examples=30, deadline=None)
@given(
    transactions=st.lists(
        st.tuples(
            st.integers(0, 7),            # slot
            st.binary(min_size=4, max_size=4),  # payload
            st.booleans(),                # commit?
        ),
        max_size=12,
    ),
    crash_inside_last=st.booleans(),
)
def test_transactions_atomic_under_crash(transactions, crash_inside_last):
    """Committed transactions survive; the interrupted one rolls back."""
    pool = fresh_pool()
    data_off = pool.alloc_region("slots", 8 * 4)
    log = TransactionLog(pool)
    pool.flush()

    committed_state = [b"\x00" * 4 for _ in range(8)]
    for index, (slot, payload, commit) in enumerate(transactions):
        is_last = index == len(transactions) - 1
        tx = log.begin()
        tx.write(data_off + slot * 4, payload)
        if is_last and crash_inside_last:
            break  # crash before commit/abort
        if commit:
            tx.commit()
            committed_state[slot] = payload
        else:
            tx.abort()
    pool.memory.crash()

    report = recover_pool(pool.memory)
    assert report.transactions_rolled_back in (0, 1)
    for slot in range(8):
        assert (
            report.pool.memory.read(data_off + slot * 4, 4)
            == committed_state[slot]
        ), f"slot {slot} inconsistent after crash"


@settings(max_examples=40, deadline=None)
@given(
    order_seed=st.integers(0, 2**20),
    persisted=st.integers(0, 6),
    partial=st.integers(0, 256),
)
def test_torn_flush_tears_only_at_atomic_units(order_seed, persisted, partial):
    """However a flush tears -- any seeded subset of the dirty lines, in
    any order, cut mid-line -- every surviving atomic unit is either the
    old value or the new one, at most one line is mixed, and the mixed
    line is a clean new-prefix/old-suffix split."""
    mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 16)
    pool = NvmPool(mem)
    off = pool.alloc_region("data", 1024)
    old = bytes(range(256)) * 4
    mem.write(off, old)
    pool.flush()
    new = bytes(b ^ 0xFF for b in old)
    mem.write(off, new)

    plan = FaultPlan(
        "flush", 1, torn=TornFlush(order_seed, persisted, partial)
    )
    mem.arm_faults(plan)
    try:
        mem.flush()
        raise AssertionError("torn flush did not crash")
    except CrashPoint:
        pass
    mem.disarm_faults()
    mem.crash()

    surviving = mem.read(off, 1024)
    unit = DeviceProfile.nvm().atomic_unit
    mixed_lines = 0
    for start in range(0, 1024, 256):
        is_new = []
        for u in range(start, start + 256, unit):
            word = surviving[u : u + unit]
            assert word in (old[u : u + unit], new[u : u + unit]), (
                "value torn below the atomic persist unit"
            )
            is_new.append(word == new[u : u + unit])
        if any(is_new) and not all(is_new):
            mixed_lines += 1
            cut = is_new.index(False)
            assert not any(is_new[cut:]), "non-prefix tear within a line"
    assert mixed_lines <= 1


@settings(max_examples=30, deadline=None)
@given(
    payloads=st.lists(
        st.binary(min_size=8, max_size=8), min_size=1, max_size=6
    ),
    crash_flush=st.integers(1, 40),
)
def test_crash_at_flush_boundary_preserves_committed_prefix(
    payloads, crash_flush
):
    """A boundary crash at any flush leaves exactly the committed-prefix
    snapshot: finished transactions survive, the in-flight one vanishes."""
    pool = fresh_pool()
    mem = pool.memory
    data_off = pool.alloc_region("slots", 8 * 8)
    mem.fill(data_off, 8 * 8)
    log = TransactionLog(pool)
    pool.flush()  # directory + zeroed slots durable before injection

    snapshots = [bytes(64)]
    current = bytearray(64)
    for index, payload in enumerate(payloads):
        slot = index % 8
        current[slot * 8 : slot * 8 + 8] = payload
        snapshots.append(bytes(current))

    plan = FaultPlan("flush", crash_flush)
    mem.arm_faults(plan)
    commit_flush_ordinals = []
    crashed = False
    try:
        for index, payload in enumerate(payloads):
            tx = log.begin()
            tx.write(data_off + (index % 8) * 8, payload)
            tx.commit()
            commit_flush_ordinals.append(plan.events["flush"])
    except CrashPoint:
        crashed = True
    mem.disarm_faults()

    if not crashed:
        assert mem.read(data_off, 64) == snapshots[-1]
        return
    mem.crash()
    report = recover_pool(mem)
    committed = sum(1 for f in commit_flush_ordinals if f < crash_flush)
    assert report.pool.memory.read(data_off, 64) == snapshots[committed]


@settings(max_examples=25, deadline=None)
@given(n_phases=st.integers(0, 5), crash_mid_phase=st.booleans())
def test_phase_marker_always_consistent(n_phases, crash_mid_phase):
    """The recovered phase marker always names a phase that fully
    completed, never a partial one."""
    pool = fresh_pool()
    pool.flush()
    phases = PhasePersistence(pool)
    completed = 0
    for index in range(n_phases):
        with phases.phase(f"phase{index}"):
            region = pool.alloc_region(f"data{index}", 64)
            pool.memory.write(region, f"phase{index}".encode().ljust(64, b"\x00"))
            pool.save_directory()
        completed += 1
    if crash_mid_phase:
        # Begin another phase but crash before its checkpoint.
        pool.alloc_region("partial", 64)
    pool.memory.crash()

    order = tuple(f"phase{i}" for i in range(max(n_phases, 1)))
    try:
        report = recover_pool(pool.memory, phase_order=order)
    except RecoveryError:
        assert completed == 0
        return
    if completed == 0:
        assert report.last_completed_phase is None
    else:
        assert report.last_completed_phase == f"phase{completed - 1}"
        # Every completed phase's data must be intact.
        for index in range(completed):
            offset, _ = report.pool.get_region(f"data{index}")
            stored = report.pool.memory.read(offset, 64).rstrip(b"\x00")
            assert stored == f"phase{index}".encode()
        # The partial phase's region never became visible.
        assert not report.pool.has_region("partial")
