"""Bit-identity guard: the media-resilience layer must be pay-for-play.

The values pinned here were captured on the tree *before* the media-fault
subsystem landed.  With ``media_protect`` / ``track_wear`` left at their
defaults and no faults armed, simulated time, the post-run pool image,
analytics results, and wear counters must all stay ``==`` to the pre-PR
behavior on the wc+ii+tv trio (same discipline as the PR-6 kernel
equivalence suite).
"""

from __future__ import annotations

import hashlib
import json

from repro.analytics import task_by_name
from repro.core.engine import EngineConfig, NTadocEngine
from repro.harness.crashsweep import _smoke_corpus, canonical_result
from repro.nvm.device import DeviceProfile
from repro.nvm.faults import FaultPlan
from repro.nvm.memory import SimulatedMemory

TRIO = ("word_count", "inverted_index", "term_vector")

#: Captured from the pre-PR tree (see module docstring).  Any drift here
#: means the default charging path changed -- a bug, not a baseline bump.
#: (Exceptions: the term_vector *result* digest was re-pinned when its
#: count-tie break moved from word id to word string for segmented
#: ingest; the *image* digests were re-pinned when the always-on
#: ``__flightrec__`` region landed in the pool directory -- the header
#: blob now names it, while data placement (the region is top-pinned)
#: and every timing/result digest stayed bit-identical.)
SOLO_BASELINE = {
    "word_count": {
        "total_ns": 26243.2,
        "result": "d83ac6c281a770ec",
        "image": "47053bb530dde5a8",
    },
    "inverted_index": {
        "total_ns": 25991.200000000114,
        "result": "0edec4260e975e83",
        "image": "42292caf4fbe1f72",
    },
    "term_vector": {
        "total_ns": 26722.60000000008,
        "result": "888db5da8696ddaf",
        "image": "1c03bd4bb0c21809",
    },
}
FUSED_BASELINE = {
    "total_ns": 56443.8000000003,
    "image": "cc70bd3254840e8e",
    "results": ["d83ac6c281a770ec", "0edec4260e975e83", "888db5da8696ddaf"],
}
WEAR_BASELINE = {"digest": "d296fc5af4124c0e", "ns": 57856.0}


class _CapturePlan(FaultPlan):
    """Counting plan that also records the memory it observes."""

    def on_flush(self, mem, dirty_lines):
        self.memory = mem
        return super().on_flush(mem, dirty_lines)


def _image_digest(mem) -> str:
    """Digest of the device image outside the flight recorder.

    The ``__flightrec__`` black box (top-pinned, zero pre-PR) is masked
    out: its ring holds event slots by design, while everything below it
    must stay byte-for-byte what the pre-PR tree produced.
    """
    image = bytearray(mem.peek(0, mem.size))
    rec = mem._flightrec
    if rec is not None:
        lo, hi = rec.window
        image[lo:hi] = bytes(hi - lo)
    return hashlib.sha256(bytes(image)).hexdigest()[:16]


def _result_digest(result) -> str:
    return hashlib.sha256(canonical_result(result).encode()).hexdigest()[:16]


def test_solo_trio_bit_identical_to_pre_pr():
    corpus = _smoke_corpus()
    for name in TRIO:
        engine = NTadocEngine(corpus, EngineConfig())
        plan = _CapturePlan()
        run = engine.run(task_by_name(name), fault_plan=plan)
        expect = SOLO_BASELINE[name]
        assert run.total_ns == expect["total_ns"]
        assert _result_digest(run.result) == expect["result"]
        assert _image_digest(plan.memory) == expect["image"]
        assert plan.memory.wear is None  # track_wear stays off by default


def test_fused_trio_bit_identical_to_pre_pr():
    engine = NTadocEngine(_smoke_corpus(), EngineConfig())
    plan = _CapturePlan()
    outcome = engine.run_many([task_by_name(n) for n in TRIO], fault_plan=plan)
    assert outcome.total_ns == FUSED_BASELINE["total_ns"]
    assert _image_digest(plan.memory) == FUSED_BASELINE["image"]
    digests = [_result_digest(r.result) for r in outcome.results]
    assert digests == FUSED_BASELINE["results"]


def test_wear_counters_bit_identical_to_pre_pr():
    mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 18, track_wear=True)
    for i in range(0, 1 << 16, 64):
        mem.write(i, b"w" * 64)
    mem.flush()
    for i in range(0, 1 << 16, 256):
        mem.rmw_add(i, 8, 3)
    mem.flush()
    digest = hashlib.sha256(json.dumps(sorted(mem.wear.items())).encode()).hexdigest()[:16]
    assert digest == WEAR_BASELINE["digest"]
    assert mem.clock.ns == WEAR_BASELINE["ns"]
