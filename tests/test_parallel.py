"""Tests for the level-synchronous parallel traversal extension."""

import pytest

from repro.core.dag import Dag
from repro.core.parallel import ParallelReport, parallel_weight_propagation
from repro.core.pruning import PrunedDag
from repro.core.summation import summate_all
from repro.core.traversal import propagate_weights_topdown
from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory
from repro.nvm.pool import NvmPool
from repro.sequitur.compressor import compress_files


def build(text="u v w x u v w x y z u v y z w x " * 30):
    corpus = compress_files([("f", text)])
    dag = Dag(corpus)
    pool = NvmPool(SimulatedMemory(DeviceProfile.nvm(), 1 << 21))
    pruned = PrunedDag.build(pool, corpus, dag, bounds=summate_all(dag))
    return corpus, dag, pruned, pool


def build_wide(n_paragraphs=200, phrases_per_paragraph=15, cache_bytes=None):
    """A corpus whose DAG has a wide middle tier: many sibling paragraph
    rules, each with its own subrule fan-out -- the shape rule-level
    parallelism thrives on (the root itself is inherently sequential)."""
    paragraphs = []
    for p in range(n_paragraphs):
        phrases = [
            f"a{p}_{i} b{p}_{i} a{p}_{i} b{p}_{i}"
            for i in range(phrases_per_paragraph)
        ]
        paragraphs.append(" ".join(phrases))
    # Repeat each paragraph so Sequitur folds it into one rule.
    text = " ".join(p + " " + p for p in paragraphs)
    corpus = compress_files([("f", text)])
    dag = Dag(corpus)
    kwargs = {} if cache_bytes is None else {"cache_bytes": cache_bytes}
    pool = NvmPool(SimulatedMemory(DeviceProfile.nvm(), 1 << 21, **kwargs))
    pruned = PrunedDag.build(pool, corpus, dag, bounds=summate_all(dag))
    return corpus, dag, pruned, pool


class TestTopologicalLevels:
    def test_levels_partition_all_rules(self):
        corpus, dag, _, _ = build()
        levels = dag.topological_levels()
        flat = [r for level in levels for r in level]
        assert sorted(flat) == list(range(corpus.n_rules))

    def test_root_in_first_level(self):
        _, dag, _, _ = build()
        assert 0 in dag.topological_levels()[0]

    def test_edges_cross_levels_forward(self):
        _, dag, _, _ = build()
        levels = dag.topological_levels()
        level_of = {}
        for depth, level in enumerate(levels):
            for rule in level:
                level_of[rule] = depth
        for rule in range(dag.n_rules):
            for target in dag.subrule_freq[rule]:
                assert level_of[target] > level_of[rule]


class TestParallelPropagation:
    def test_matches_sequential_weights(self):
        corpus, dag, pruned, pool = build()
        levels = dag.topological_levels()
        parallel_weight_propagation(pruned, pool.allocator, levels, workers=4)
        parallel = [pruned.weight(r) for r in range(corpus.n_rules)]

        corpus2, dag2, pruned2, pool2 = build()
        propagate_weights_topdown(pruned2, pool2.allocator)
        sequential = [pruned2.weight(r) for r in range(corpus2.n_rules)]
        assert parallel == sequential

    @pytest.mark.parametrize("workers", [1, 2, 4, 8])
    def test_any_worker_count_correct(self, workers):
        corpus, dag, pruned, pool = build()
        levels = dag.topological_levels()
        parallel_weight_propagation(
            pruned, pool.allocator, levels, workers=workers
        )
        assert pruned.weight(0) == 1
        assert all(
            pruned.weight(r) > 0 for r in range(corpus.n_rules)
        )  # every rule reachable

    def test_speedup_with_more_workers(self):
        corpus, dag, _, _ = build_wide()
        levels = dag.topological_levels()
        reports = {}
        for workers in (1, 4):
            _, _, pruned, pool = build_wide()
            reports[workers] = parallel_weight_propagation(
                pruned, pool.allocator, levels, workers=workers,
                contention=0.0,
            )
        assert reports[4].speedup > 1.5 * reports[1].speedup
        assert reports[4].speedup <= 4.0 + 1e-9

    def test_full_contention_kills_speedup(self):
        corpus, dag, pruned, pool = build()
        levels = dag.topological_levels()
        report = parallel_weight_propagation(
            pruned, pool.allocator, levels, workers=8, contention=1.0
        )
        assert report.speedup <= 1.0

    def test_clock_advances_by_parallel_time(self):
        corpus, dag, pruned, pool = build_wide()
        levels = dag.topological_levels()
        start = pool.memory.clock.ns
        report = parallel_weight_propagation(
            pruned, pool.allocator, levels, workers=4
        )
        elapsed = pool.memory.clock.ns - start
        # elapsed = parallel time + the (small) weight-reset preamble.
        assert report.parallel_ns <= elapsed <= report.parallel_ns * 1.5
        assert elapsed < report.serial_ns

    def test_device_time_refunded_with_clock(self):
        """device_ns is time-denominated and must shrink by the same
        refund proportion as the clock -- otherwise a parallel run
        reports sequential device time against a rewound clock."""
        # A cache far smaller than the DAG keeps device traffic alive
        # during propagation (the default cache absorbs it entirely).
        _, dag, pruned, pool = build_wide(cache_bytes=1 << 12)
        levels = dag.topological_levels()
        stats = pool.memory.stats
        start = stats.device_ns
        parallel_weight_propagation(
            pruned, pool.allocator, levels, workers=1, contention=0.0
        )
        serial_device = stats.device_ns - start

        _, dag, pruned, pool = build_wide(cache_bytes=1 << 12)
        stats = pool.memory.stats
        start = stats.device_ns
        parallel_weight_propagation(
            pruned, pool.allocator, levels, workers=4, contention=0.0
        )
        parallel_device = stats.device_ns - start

        assert serial_device > 0.0
        assert 0.0 <= parallel_device < serial_device

    def test_device_time_never_exceeds_elapsed(self):
        _, dag, pruned, pool = build_wide(cache_bytes=1 << 12)
        levels = dag.topological_levels()
        clock = pool.memory.clock
        stats = pool.memory.stats
        clock_start, device_start = clock.ns, stats.device_ns
        parallel_weight_propagation(
            pruned, pool.allocator, levels, workers=4, contention=0.0
        )
        assert stats.device_ns - device_start <= clock.ns - clock_start

    def test_invalid_args(self):
        corpus, dag, pruned, pool = build()
        levels = dag.topological_levels()
        with pytest.raises(ValueError):
            parallel_weight_propagation(pruned, pool.allocator, levels, 0)
        with pytest.raises(ValueError):
            parallel_weight_propagation(
                pruned, pool.allocator, levels, 2, contention=1.5
            )

    def test_report_speedup_degenerate(self):
        assert ParallelReport(1, 0, 0.0, 0.0).speedup == 1.0
