"""Tests for the figure builders (run at reduced scale for speed)."""

import pytest

from repro.harness import figures
from repro.harness.cache import RunCache
from repro.harness.figures import FIGURES, Figure

_SCALE = 0.12


@pytest.fixture(scope="module")
def cache():
    return RunCache(scale=_SCALE)


class TestRunCache:
    def test_memoizes_runs(self, cache):
        first = cache.get("ntadoc", "A", "word_count")
        second = cache.get("ntadoc", "A", "word_count")
        assert first is second

    def test_overrides_produce_distinct_cells(self, cache):
        auto = cache.get("ntadoc", "C", "term_vector")
        pinned = cache.get("ntadoc", "C", "term_vector", traversal="bottomup")
        assert auto is not pinned
        assert auto.result == pinned.result

    def test_corpus_memoized(self, cache):
        assert cache.corpus("A") is cache.corpus("A")


class TestFigureBuilders:
    def test_registry_covers_paper_artifacts(self):
        assert {
            "table1", "fig5a", "fig5b", "fig6", "fig7",
            "dram-savings", "table2", "naive-port", "traversal", "pruning",
        } <= set(FIGURES)

    def test_table1(self, cache):
        figure = figures.table1(cache)
        assert isinstance(figure, Figure)
        assert set(figure.data["stats"]) == {"A", "B", "C", "D"}
        assert "TABLE I" in figure.render()

    def test_fig5_structure(self, cache):
        figure = figures.fig5(cache)
        assert len(figure.data["matrix"]) == 4 * 6
        assert figure.data["geomean"] > 0
        assert "geometric mean" in figure.render()

    def test_fig6_structure(self, cache):
        figure = figures.fig6(cache)
        assert all(v > 0 for v in figure.data["matrix"].values())

    def test_fig7_structure(self, cache):
        figure = figures.fig7(cache)
        assert figure.data["hdd_geomean"] > figure.data["ssd_geomean"] > 0

    def test_dram_savings_structure(self, cache):
        figure = figures.dram_savings(cache)
        assert 0 < figure.data["average"] < 1

    def test_table2_structure(self, cache):
        figure = figures.table2(cache)
        assert ("C", "word_count") in figure.data["cells"]
        assert set(figure.data["phase_gains"]) == {"C", "D"}

    def test_naive_port_structure(self, cache):
        figure = figures.naive_port(cache)
        assert figure.data["overhead_geomean"] > 1
        assert figure.data["cross_geomean"] > 1

    def test_pruning_structure(self, cache):
        figure = figures.pruning(cache)
        assert all(0 <= v < 1 for v in figure.data["corpus_savings"].values())

    def test_traversal_structure(self, cache):
        figure = figures.traversal_strategies(cache, scales=(0.05, 0.1))
        points = figure.data["points"]
        assert len(points) == 2
        assert all(ratio > 0 for _, ratio in points)

    def test_render_is_plain_text(self, cache):
        figure = figures.table1(cache)
        text = figure.render()
        assert isinstance(text, str)
        assert text.count("\n") >= 5
