"""Robustness fuzzing of the on-disk corpus format.

A corrupted or truncated artifact must always surface as
:class:`~repro.errors.CorruptDataError` (or a validation
:class:`~repro.errors.GrammarError`) -- never as an uncontrolled
exception, hang, or silently wrong corpus.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CorruptDataError, GrammarError
from repro.sequitur import serialization
from repro.sequitur.compressor import compress_files


def reference_blob() -> bytes:
    corpus = compress_files(
        [("f1", "lorem ipsum dolor sit amet lorem ipsum dolor"),
         ("f2", "sit amet consectetur lorem ipsum")]
    )
    return serialization.serialize(corpus)


_BLOB = reference_blob()


@settings(max_examples=120, deadline=None)
@given(cut=st.integers(0, len(_BLOB) - 1))
def test_truncation_never_crashes(cut):
    truncated = _BLOB[:cut]
    try:
        corpus = serialization.deserialize(truncated)
    except (CorruptDataError, GrammarError):
        return
    # A shorter prefix that still parses must at least be structurally
    # valid (validate() ran inside deserialize).
    corpus.validate()


@settings(max_examples=150, deadline=None)
@given(
    position=st.integers(0, len(_BLOB) - 1),
    replacement=st.integers(0, 255),
)
def test_single_byte_corruption_never_crashes(position, replacement):
    mutated = bytearray(_BLOB)
    mutated[position] = replacement
    try:
        corpus = serialization.deserialize(bytes(mutated))
    except (CorruptDataError, GrammarError):
        return
    # Corruption that happens to keep the format valid must still yield
    # a structurally consistent corpus.
    corpus.validate()
    corpus.expand_files()


@settings(max_examples=60, deadline=None)
@given(garbage=st.binary(max_size=200))
def test_arbitrary_bytes_never_crash(garbage):
    try:
        serialization.deserialize(garbage)
    except (CorruptDataError, GrammarError):
        pass


@settings(max_examples=60, deadline=None)
@given(
    splice_at=st.integers(4, len(_BLOB) - 1),
    inserted=st.binary(min_size=1, max_size=16),
)
def test_insertion_corruption_never_crashes(splice_at, inserted):
    mutated = _BLOB[:splice_at] + inserted + _BLOB[splice_at:]
    try:
        corpus = serialization.deserialize(mutated)
    except (CorruptDataError, GrammarError):
        return
    corpus.validate()
