"""Unit tests for the segment layer: pool v4 extents, SegmentedCorpus,
the manifest codec, and trace parsing."""

import pytest

from repro.core.engine import EngineConfig
from repro.errors import PoolLayoutError, ReproError
from repro.ingest import SegmentedCorpus, SegmentedEngine
from repro.ingest.trace import TraceOp, format_trace, parse_trace, synthetic_trace
from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedClock, SimulatedMemory
from repro.nvm.pool import NvmPool


def _mem(size=1 << 20, track_wear=False):
    return SimulatedMemory(
        DeviceProfile.nvm(), size, SimulatedClock(), track_wear=track_wear
    )


class TestSegmentedPool:
    def test_create_get_retire_roundtrip(self):
        pool = NvmPool(_mem(), segmented=True)
        off = pool.create_segment("seg0", 4096)
        assert pool.has_segment("seg0")
        assert pool.get_segment("seg0") == (off, 4096)
        assert pool.segment_names() == ["seg0"]
        pool.retire_segment("seg0")
        assert not pool.has_segment("seg0")
        assert pool.segment_names() == []

    def test_segment_extents_are_line_aligned_and_disjoint(self):
        pool = NvmPool(_mem(), segmented=True)
        line = pool.memory.profile.line_size
        extents = []
        for i in range(4):
            off = pool.create_segment(f"s{i}", 1000 + i * 64)
            assert off % line == 0
            extents.append((off, 1000 + i * 64))
        spans = sorted((off, off + size) for off, size in extents)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start

    def test_duplicate_segment_name_rejected(self):
        pool = NvmPool(_mem(), segmented=True)
        pool.create_segment("seg0", 1024)
        with pytest.raises(PoolLayoutError):
            pool.create_segment("seg0", 1024)

    def test_non_segmented_pool_rejects_segments(self):
        pool = NvmPool(_mem())
        with pytest.raises(PoolLayoutError):
            pool.create_segment("seg0", 1024)

    def test_retired_extent_is_reused_and_sanitized(self):
        mem = _mem()
        pool = NvmPool(mem, segmented=True)
        off = pool.create_segment("old", 4096)
        mem.write(off, b"\xab" * 4096)
        mem.flush()
        pool.retire_segment("old")
        off2 = pool.create_segment("new", 4096)
        assert off2 == off  # whole-extent reuse
        assert mem.read(off2, 4096) == bytes(4096)  # recycled media zeroed

    def test_wear_aware_placement_prefers_cold_extent(self):
        mem = _mem(track_wear=True)
        pool = NvmPool(mem, segmented=True)
        hot = pool.create_segment("hot", 4096)
        cold = pool.create_segment("cold", 4096)
        for _ in range(50):  # heat the first extent
            mem.write(hot, b"x" * 256)
            mem.flush()
        pool.retire_segment("hot")
        pool.retire_segment("cold")
        chosen = pool.create_segment("fresh", 4096)
        assert chosen == cold

    def test_v4_directory_survives_reopen(self):
        mem = _mem()
        pool = NvmPool(mem, segmented=True, media_protect=False)
        off = pool.create_segment("seg0", 2048)
        pool.alloc_region("plain", 128)
        pool.flush()
        reopened = NvmPool(mem)
        reopened.load_directory()
        assert reopened.segmented
        assert reopened.get_segment("seg0") == (off, 2048)
        assert reopened.has_region("plain")

    def test_nested_segment_pool_is_isolated(self):
        mem = _mem()
        pool = NvmPool(mem, segmented=True)
        base = pool.create_segment("seg0", 1 << 16)
        nested = pool.segment_pool("seg0")
        r = nested.alloc_region("inner", 256)
        assert base <= r < base + (1 << 16)
        nested.save_directory()
        pool.flush()
        again = pool.segment_pool("seg0")
        again.load_directory()
        assert again.get_region("inner") == (r, 256)


class TestSegmentedCorpus:
    def _corpus(self, threshold=8):
        return SegmentedCorpus(seal_threshold_tokens=threshold)

    def test_append_seal_shares_dictionary(self):
        c = self._corpus()
        c.append("a", "red green blue")
        s1 = c.seal()
        c.append("b", "green blue yellow")
        s2 = c.seal()
        # Earlier segment's vocab is a prefix of the later one's.
        assert s2.corpus.vocab[: len(s1.corpus.vocab)] == s1.corpus.vocab
        green = s1.corpus.vocab.index("green")
        assert s2.corpus.vocab[green] == "green"

    def test_duplicate_live_name_rejected(self):
        c = self._corpus()
        c.append("a", "one")
        with pytest.raises(ReproError):
            c.append("a", "two")
        c.seal()
        with pytest.raises(ReproError):
            c.append("a", "three")

    def test_name_reusable_after_delete(self):
        c = self._corpus()
        c.append("a", "one two")
        c.seal()
        c.delete("a")
        c.append("a", "three four")  # tombstoned name is free again
        assert c.live_doc_names() == ["a"]

    def test_should_seal_threshold(self):
        c = self._corpus(threshold=4)
        c.append("a", "one two")
        assert not c.should_seal
        c.append("b", "three four")
        assert c.should_seal

    def test_delete_from_buffer_removes_outright(self):
        c = self._corpus()
        c.append("a", "one two three")
        kind, _ = c.delete("a")
        assert kind == "buffer"
        assert c.buffered_tokens == 0
        assert c.seal() is None

    def test_delete_from_segment_plants_tombstone(self):
        c = self._corpus()
        c.append("a", "one")
        c.append("b", "two")
        c.seal()
        kind, seg_index = c.delete("a")
        assert (kind, seg_index) == ("segment", 0)
        assert c.segments[0].tombstones == {0}
        assert c.live_doc_names() == ["b"]
        with pytest.raises(ReproError):
            c.delete("a")  # already dead

    def test_compact_preserves_global_order(self):
        c = self._corpus()
        for i in range(6):
            c.append(f"d{i}", f"word{i} common text")
            if i % 2 == 1:
                c.seal()
        c.delete("d2")
        before = c.live_doc_names()
        retired, merged = c.compact(upto=2)
        assert [s.name for s in retired] == ["seg000000", "seg000001"]
        assert merged.corpus.file_names == ["d0", "d1", "d3"]
        assert c.live_doc_names() == before

    def test_compact_all_tombstoned_vanishes(self):
        c = self._corpus()
        c.append("a", "one")
        c.seal()
        c.append("b", "two")
        c.seal()
        c.delete("a")
        retired, merged = c.compact(upto=1)
        assert merged is None
        assert len(retired) == 1
        assert c.live_doc_names() == ["b"]

    def test_compact_bad_range(self):
        c = self._corpus()
        with pytest.raises(ValueError):
            c.compact()
        c.append("a", "one")
        c.seal()
        with pytest.raises(ValueError):
            c.compact(upto=2)

    def test_recompressed_empty_raises(self):
        c = self._corpus()
        with pytest.raises(ReproError):
            c.recompressed()

    def test_recompressed_matches_live_docs(self):
        c = self._corpus()
        c.append("a", "alpha beta")
        c.append("b", "beta gamma")
        c.seal()
        c.delete("a")
        c.append("c", "gamma delta")
        ref = c.recompressed()
        assert ref.file_names == ["b", "c"]
        assert ref.expand_text() == ["beta gamma", "gamma delta"]

    def test_from_segments_roundtrip(self):
        c = self._corpus()
        for i in range(4):
            c.append(f"d{i}", f"shared tokens w{i}")
            c.seal()
        c.delete("d1")
        rebuilt = SegmentedCorpus.from_segments(list(c.segments))
        assert rebuilt.live_doc_names() == c.live_doc_names()
        assert rebuilt.dictionary.words() == c.dictionary.words()
        rebuilt.append("d9", "shared tokens more")
        seg = rebuilt.seal()
        assert seg.name == "seg000004"  # id continues past the max seen


class TestManifest:
    def test_manifest_roundtrip_via_engine(self):
        eng = SegmentedEngine(EngineConfig(), seal_threshold_tokens=4)
        eng.append("a", "one two three four")  # auto-seals
        eng.append("b", "five six seven eight")
        eng.seal()
        eng.delete("a")
        entries = eng._read_manifest()
        assert [name for name, _, _ in entries] == ["seg000000", "seg000001"]
        assert entries[0][2] == [0]  # a's tombstone is durable
        assert entries[1][2] == []

    def test_oversized_manifest_rejected(self):
        eng = SegmentedEngine(EngineConfig())
        eng.corpus.append("a", "x " * 4)
        seg = eng.corpus.seal()
        seg.tombstones.update(range(20000))  # blows the 64 KiB region
        eng.corpus.segments = [seg]
        with pytest.raises(ReproError):
            eng._manifest_blob()


class TestTrace:
    def test_parse_format_roundtrip(self):
        ops = synthetic_trace(n_docs=5, doc_tokens=4, rounds=2, seed=11)
        assert parse_trace(format_trace(ops)) == ops

    def test_parse_skips_comments_and_blanks(self):
        ops = parse_trace("# hi\n\nappend a x y\nseal\ncheckpoint\n")
        assert ops == [
            TraceOp("append", "a", "x y"),
            TraceOp("seal"),
            TraceOp("checkpoint"),
        ]

    def test_parse_rejects_bad_ops(self):
        with pytest.raises(ReproError):
            parse_trace("frobnicate a")
        with pytest.raises(ReproError):
            parse_trace("append lonely")
        with pytest.raises(ReproError):
            parse_trace("delete")
        with pytest.raises(ReproError):
            parse_trace("seal extra")
