"""Tests for the ledger, phase timer, harness registry, and tables."""

import pytest

from repro.analytics.word_count import WordCount
from repro.core.engine import EngineConfig
from repro.harness.comparisons import geometric_mean, phase_speedup, speedup
from repro.harness.runner import SYSTEMS, build_engine, run_system
from repro.harness.tables import format_table
from repro.metrics.ledger import MemoryLedger
from repro.metrics.timer import PhaseTimeline
from repro.nvm.memory import SimulatedClock
from repro.sequitur.compressor import compress_files


class TestLedger:
    def test_charge_and_peak(self):
        ledger = MemoryLedger()
        ledger.charge("dram", "dict", 100)
        ledger.charge("dram", "buffer", 50)
        assert ledger.current("dram") == 150
        assert ledger.peak("dram") == 150
        ledger.release("dram", "buffer", 50)
        assert ledger.current("dram") == 100
        assert ledger.peak("dram") == 150

    def test_devices_independent(self):
        ledger = MemoryLedger()
        ledger.charge("dram", "x", 10)
        ledger.charge("nvm", "y", 99)
        assert ledger.peak("dram") == 10
        assert ledger.peak("nvm") == 99

    def test_breakdown(self):
        ledger = MemoryLedger()
        ledger.charge("dram", "dict", 100)
        ledger.charge("dram", "dict", 20)
        assert ledger.breakdown("dram") == {"dict": 120}

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            MemoryLedger().charge("dram", "x", -1)

    def test_dram_saving(self):
        assert MemoryLedger.dram_saving(100, 30) == pytest.approx(0.7)
        assert MemoryLedger.dram_saving(0, 30) == 0.0

    def test_over_release_rejected(self):
        ledger = MemoryLedger()
        ledger.charge("dram", "buffer", 100)
        with pytest.raises(ValueError, match="'dram'.*'buffer'"):
            ledger.release("dram", "buffer", 101)
        # The failed release must not have moved the counters.
        assert ledger.current("dram") == 100
        assert ledger.breakdown("dram") == {"buffer": 100}

    def test_release_of_unknown_label_rejected(self):
        ledger = MemoryLedger()
        ledger.charge("dram", "held", 50)
        with pytest.raises(ValueError, match="'never_charged'"):
            ledger.release("dram", "never_charged", 1)

    def test_negative_release_rejected(self):
        ledger = MemoryLedger()
        ledger.charge("dram", "x", 10)
        with pytest.raises(ValueError):
            ledger.release("dram", "x", -1)

    def test_exact_release_allowed(self):
        ledger = MemoryLedger()
        ledger.charge("pool", "tables", 64)
        ledger.release("pool", "tables", 64)
        assert ledger.current("pool") == 0

    def test_currents_snapshot(self):
        ledger = MemoryLedger()
        assert ledger.currents() == {}
        ledger.charge("dram", "a", 30)
        ledger.charge("pool", "b", 70)
        assert ledger.currents() == {"dram": 30, "pool": 70}
        ledger.release("pool", "b", 70)
        # Zero entries are omitted, and the snapshot is independent.
        snap = ledger.currents()
        assert snap == {"dram": 30}
        ledger.charge("dram", "a", 5)
        assert snap == {"dram": 30}


class TestTimeline:
    def test_phase_records_sim_time(self):
        clock = SimulatedClock()
        timeline = PhaseTimeline(clock)
        with timeline.phase("initialization"):
            clock.advance(500)
        with timeline.phase("traversal"):
            clock.advance(300)
        assert timeline.sim_ns("initialization") == 500
        assert timeline.sim_ns("traversal") == 300
        assert timeline.total_sim_ns() == 800
        assert timeline.as_dict() == {"initialization": 500, "traversal": 300}

    def test_repeated_phases_accumulate(self):
        clock = SimulatedClock()
        timeline = PhaseTimeline(clock)
        for _ in range(3):
            with timeline.phase("step"):
                clock.advance(10)
        assert timeline.sim_ns("step") == 30

    def test_nested_phases_both_record_full_interval(self):
        clock = SimulatedClock()
        timeline = PhaseTimeline(clock)
        with timeline.phase("outer"):
            clock.advance(100)
            with timeline.phase("inner"):
                clock.advance(40)
            clock.advance(10)
        # Records land innermost-first; the outer interval includes the
        # inner one (nesting does not subtract).
        assert [r.name for r in timeline.records] == ["inner", "outer"]
        assert timeline.sim_ns("inner") == 40
        assert timeline.sim_ns("outer") == 150

    def test_reentrant_same_name_phases(self):
        clock = SimulatedClock()
        timeline = PhaseTimeline(clock)
        with timeline.phase("work"):
            clock.advance(5)
            with timeline.phase("work"):
                clock.advance(3)
        # Same-name re-entry sums both records under one key, and the
        # outer record includes the inner interval (5 + 3 outer, 3
        # inner): nested phases overlap rather than partition, which is
        # why the engine only ever nests *distinct* phase names.
        assert [r.sim_ns for r in timeline.records] == [3.0, 8.0]
        assert timeline.sim_ns("work") == 11
        assert timeline.as_dict() == {"work": 11.0}

    def test_phase_record_dropped_on_exception(self):
        clock = SimulatedClock()
        timeline = PhaseTimeline(clock)
        with pytest.raises(RuntimeError):
            with timeline.phase("doomed"):
                clock.advance(9)
                raise RuntimeError("crash mid-phase")
        assert timeline.records == []

    def test_traced_timeline_shares_clock_readings(self):
        from repro.obs.tracer import Tracer

        clock = SimulatedClock()
        tracer = Tracer()
        tracer.bind(clock=clock)
        timeline = PhaseTimeline(clock, tracer=tracer)
        with timeline.phase("initialization"):
            clock.advance(123.456)
        with timeline.phase("traversal"):
            clock.advance(77.5)
        # Bit-exact (no approx): phase spans reuse the timeline's clock.
        assert tracer.total_sim_ns() == timeline.total_sim_ns()
        assert [s.name for s in tracer.roots] == [
            "phase:initialization",
            "phase:traversal",
        ]
        assert tracer.roots[0].sim_ns == timeline.records[0].sim_ns


class TestComparisons:
    def test_speedup(self):
        from repro.core.engine import RunResult

        def result(ns, phases=None):
            return RunResult(
                task="t", system="s", result=None,
                phase_ns=phases or {}, total_ns=ns,
                dram_peak=1, pool_peak=1, pool_device="nvm", strategy="x",
            )

        assert speedup(result(200), result(100)) == 2.0
        with pytest.raises(ValueError):
            speedup(result(200), result(0))
        fast = result(100, {"traversal": 20})
        slow = result(300, {"traversal": 80})
        assert phase_speedup(slow, fast, "traversal") == 4.0

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([3]) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1, -1])


class TestHarness:
    def corpus(self):
        return compress_files([("f", "a b c a b c a b c d e " * 3)])

    def test_all_systems_instantiable(self):
        corpus = self.corpus()
        for name in SYSTEMS:
            engine = build_engine(name, corpus)
            assert hasattr(engine, "run")

    def test_unknown_system_raises(self):
        with pytest.raises(KeyError):
            build_engine("vaporware", self.corpus())

    def test_run_system_produces_results(self):
        corpus = self.corpus()
        run = run_system("ntadoc", corpus, WordCount())
        assert run.system == "ntadoc"
        assert run.total_ns > 0

    def test_systems_have_expected_devices(self):
        corpus = self.corpus()
        assert run_system("tadoc_dram", corpus, WordCount()).pool_device == "dram"
        assert run_system("ntadoc_ssd", corpus, WordCount()).pool_device == "ssd"
        assert run_system("ntadoc_hdd", corpus, WordCount()).pool_device == "hdd"

    def test_base_config_knobs_propagate(self):
        corpus = self.corpus()
        run = run_system(
            "ntadoc", corpus, WordCount(),
            EngineConfig(traversal="bottomup"),
        )
        assert run.strategy == "bottomup"

    def test_all_systems_same_answers(self):
        corpus = self.corpus()
        expected = None
        for name in SYSTEMS:
            run = run_system(name, corpus, WordCount())
            if expected is None:
                expected = run.result
            assert run.result == expected, f"{name} diverged"


class TestTables:
    def test_basic_render(self):
        table = format_table(
            ["name", "value"], [["a", 1.234], ["bb", 1234.5]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "1.23" in table
        assert "1234" in table  # wait, 1234.5 -> "1235" after rounding

    def test_alignment(self):
        table = format_table(["x"], [["longcell"], ["s"]])
        lines = table.splitlines()
        assert len(lines[1]) == len("longcell")


class TestMemoryStats:
    def test_snapshot_delta(self):
        from repro.nvm.device import DeviceProfile
        from repro.nvm.memory import SimulatedMemory

        mem = SimulatedMemory(DeviceProfile.nvm(), 4096)
        mem.write(0, b"x" * 100)
        snapshot = mem.stats.snapshot()
        mem.read(0, 100)
        delta = mem.stats.delta(snapshot)
        assert delta.read_ops == 1
        assert delta.write_ops == 0
        assert delta.bytes_read == 100

    def test_merge(self):
        from repro.nvm.stats import MemoryStats

        a = MemoryStats(read_ops=2, bytes_read=10)
        b = MemoryStats(read_ops=3, bytes_written=7)
        merged = a.merge(b)
        assert merged.read_ops == 5
        assert merged.bytes_read == 10
        assert merged.bytes_written == 7

    def test_hit_rate(self):
        from repro.nvm.stats import MemoryStats

        assert MemoryStats().cache_hit_rate == 0.0
        assert MemoryStats(cache_hits=3, cache_misses=1).cache_hit_rate == 0.75

    def test_as_dict_round(self):
        from repro.nvm.stats import MemoryStats

        stats = MemoryStats(read_ops=1)
        assert stats.as_dict()["read_ops"] == 1

    def test_delta_merge_roundtrip(self):
        """snapshot + delta and merge are inverses: for any split point,
        earlier.merge(later.delta(earlier)) == later, on every counter."""
        from repro.nvm.device import DeviceProfile
        from repro.nvm.memory import SimulatedMemory

        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 14)
        mem.write(0, b"a" * 300)
        earlier = mem.stats.snapshot()
        mem.read(0, 300)
        mem.write(512, b"b" * 64)
        mem.flush()
        later = mem.stats.snapshot()
        delta = later.delta(earlier)
        assert earlier.merge(delta) == later
        # delta of a stats object against itself is all-zero.
        assert later.delta(later) == type(later)()

    def test_merge_commutes_and_zero_is_identity(self):
        from repro.nvm.stats import MemoryStats

        a = MemoryStats(read_ops=2, bytes_read=10, device_ns=1.5)
        b = MemoryStats(write_ops=4, bytes_written=9, device_ns=0.25)
        assert a.merge(b) == b.merge(a)
        assert a.merge(MemoryStats()) == a


class TestDeviceInvariance:
    def test_results_identical_on_every_device(self):
        """The device profile changes cost, never answers."""
        from repro.analytics.word_count import WordCount
        from repro.core.engine import EngineConfig, NTadocEngine
        from repro.sequitur.compressor import compress_files

        corpus = compress_files(
            [("f1", "p q r p q r s t"), ("f2", "s t p q r")]
        )
        results = set()
        for device in ("dram", "reram", "nvm", "pcm", "ssd", "hdd"):
            persistence = "none" if device == "dram" else "phase"
            run = NTadocEngine(
                corpus, EngineConfig(device=device, persistence=persistence)
            ).run(WordCount())
            results.add(tuple(sorted(run.result.items())))
        assert len(results) == 1
