"""Tests for streaming (chunked) ingestion and merged analytics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import task_by_name
from repro.core.engine import NTadocEngine
from repro.core.streaming import StreamingCorpus
from repro.errors import ReproError
from repro.sequitur.compressor import compress_files

BATCH_1 = [
    ("mon.log", "status ok status ok error retry status ok"),
    ("tue.log", "error retry error retry status ok"),
]
BATCH_2 = [
    ("wed.log", "status ok maintenance window status ok"),
]
BATCH_3 = [
    ("thu.log", "maintenance window error retry error retry"),
    ("fri.log", "status ok status ok status ok"),
]

ALL_FILES = BATCH_1 + BATCH_2 + BATCH_3

MERGEABLE_TASKS = (
    "word_count",
    "sort",
    "term_vector",
    "inverted_index",
    "sequence_count",
    "ranked_inverted_index",
)


@pytest.fixture
def stream():
    s = StreamingCorpus()
    s.ingest(BATCH_1)
    s.ingest(BATCH_2)
    s.ingest(BATCH_3)
    return s


@pytest.fixture(scope="module")
def monolithic():
    return compress_files(ALL_FILES)


class TestIngestion:
    def test_chunk_count(self, stream):
        assert len(stream.chunks) == 3
        assert stream.n_files == 5

    def test_file_names_in_order(self, stream):
        assert stream.file_names == [name for name, _ in ALL_FILES]

    def test_shared_dictionary_keeps_ids_stable(self, stream, monolithic):
        # Same file order -> same first-seen order -> identical ids.
        assert stream.vocab == monolithic.vocab

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            StreamingCorpus().ingest([])

    def test_run_before_ingest_rejected(self):
        with pytest.raises(ReproError):
            StreamingCorpus().run(task_by_name("word_count"))

    def test_chunking_costs_compression(self, stream, monolithic):
        """Cross-chunk redundancy is not captured: the chunked grammar is
        at least as large as the monolithic one."""
        assert stream.grammar_length() >= monolithic.grammar_length()


class TestMergedResults:
    @pytest.mark.parametrize("task_name", MERGEABLE_TASKS)
    def test_merged_equals_monolithic(self, stream, monolithic, task_name):
        """Streaming ingestion must not change any analytics answer."""
        merged = stream.run(task_by_name(task_name))
        reference = NTadocEngine(monolithic).run(task_by_name(task_name))
        assert merged.result == reference.result

    def test_timings_accumulate(self, stream):
        merged = stream.run(task_by_name("word_count"))
        assert len(merged.chunk_ns) == 3
        assert merged.total_ns == pytest.approx(sum(merged.chunk_ns))

    def test_ngram_names_cover_result(self, stream):
        merged = stream.run(task_by_name("sequence_count"))
        assert set(merged.result) <= set(merged.ngram_names)

    def test_incremental_word_counts_grow(self):
        s = StreamingCorpus()
        s.ingest(BATCH_1)
        first = s.run(task_by_name("word_count")).result
        s.ingest(BATCH_3)
        second = s.run(task_by_name("word_count")).result
        for word, count in first.items():
            assert second.get(word, 0) >= count

    def test_word_search_merge(self, stream, monolithic):
        from repro.analytics.search import WordSearch

        error_id = monolithic.vocab.index("error")
        merged = stream.run(WordSearch([error_id]))
        # "error" appears in mon, tue (chunk 1) and thu (chunk 3).
        assert merged.result[error_id] == [0, 1, 3]

    def test_unmergeable_task_rejected(self, stream):
        class Opaque:
            name = "opaque"

            def run_compressed(self, ctx):
                return object()

        with pytest.raises(ReproError):
            stream._merge("opaque", [])


@settings(max_examples=12, deadline=None)
@given(
    split_points=st.lists(st.integers(1, 4), min_size=0, max_size=3),
    task_index=st.integers(0, len(MERGEABLE_TASKS) - 1),
)
def test_property_any_batch_split_equals_monolithic(split_points, task_index):
    """However the stream is batched, merged analytics equal the
    monolithic answer."""
    boundaries = sorted(set(split_points))
    batches = []
    start = 0
    for boundary in boundaries:
        if boundary > start:
            batches.append(ALL_FILES[start:boundary])
            start = boundary
    if start < len(ALL_FILES):
        batches.append(ALL_FILES[start:])

    stream = StreamingCorpus()
    for batch in batches:
        stream.ingest(batch)
    task_name = MERGEABLE_TASKS[task_index]
    merged = stream.run(task_by_name(task_name))
    reference = NTadocEngine(compress_files(ALL_FILES)).run(
        task_by_name(task_name)
    )
    assert merged.result == reference.result





class TestDeletion:
    """Logical deletion (tombstones) filters merged analytics exactly."""

    def build(self):
        s = StreamingCorpus()
        s.ingest(BATCH_1)
        s.ingest(BATCH_2)
        s.ingest(BATCH_3)
        return s

    def reference_without(self, dropped: set[str], task_name: str):
        kept = [(n, t) for n, t in ALL_FILES if n not in dropped]
        # Build a reference stream over only the kept files, but patch the
        # expected file indices back to the original global numbering.
        mapping = [
            i for i, (n, _) in enumerate(ALL_FILES) if n not in dropped
        ]
        stream = StreamingCorpus()
        stream.ingest(kept)
        result = stream.run(task_by_name(task_name)).result
        if task_name in ("word_count", "sequence_count"):
            # Word ids may differ if a word only occurred in dropped
            # files; compare via rendered words instead.
            return {
                stream.vocab[k]: v for k, v in result.items()
            } if task_name == "word_count" else result
        if task_name == "inverted_index":
            return {
                k: [mapping[f] for f in files] for k, files in result.items()
            }
        return result

    def test_word_count_excludes_deleted_content(self):
        stream = self.build()
        stream.delete_file("mon.log")
        result = stream.run(task_by_name("word_count")).result
        rendered = {stream.vocab[k]: v for k, v in result.items()}
        expected_tokens = [
            t for n, text in ALL_FILES if n != "mon.log"
            for t in text.split()
        ]
        expected = {}
        for token in expected_tokens:
            expected[token] = expected.get(token, 0) + 1
        assert rendered == expected

    def test_inverted_index_drops_deleted_file(self):
        stream = self.build()
        index_before = stream.run(task_by_name("inverted_index")).result
        deleted_index = stream.delete_file("wed.log")
        index_after = stream.run(task_by_name("inverted_index")).result
        for posting in index_after.values():
            assert deleted_index not in posting
        # Other files' postings are untouched.
        for word, posting in index_after.items():
            assert posting == [
                f for f in index_before.get(word, []) if f != deleted_index
            ]

    def test_term_vector_blanks_deleted_file(self):
        stream = self.build()
        deleted_index = stream.delete_file("thu.log")
        vectors = stream.run(task_by_name("term_vector")).result
        assert vectors[deleted_index] == []
        assert len(vectors) == stream.n_files

    def test_ranked_index_filters_postings(self):
        stream = self.build()
        deleted_index = stream.delete_file("fri.log")
        ranked = stream.run(task_by_name("ranked_inverted_index")).result
        for posting in ranked.values():
            assert all(f != deleted_index for f, _ in posting)

    def test_sequence_count_subtracts_deleted(self):
        stream = self.build()
        before = stream.run(task_by_name("sequence_count")).result
        stream.delete_file("mon.log")
        after = stream.run(task_by_name("sequence_count")).result
        assert sum(after.values()) < sum(before.values())
        assert all(v > 0 for v in after.values())

    def test_delete_unknown_file(self):
        stream = self.build()
        with pytest.raises(KeyError):
            stream.delete_file("nonexistent.log")

    def test_live_files_tracking(self):
        stream = self.build()
        assert len(stream.live_files) == 5
        stream.delete_file("mon.log")
        assert len(stream.live_files) == 4
        assert 0 not in stream.live_files
