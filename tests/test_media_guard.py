"""Tests for chunk-granular CRC sealing and the media scrub
(`repro.nvm.scrub`), plus the raw UBER fault model underneath it."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CrashPoint, MediaError
from repro.nvm.device import DeviceProfile
from repro.nvm.faults import FaultPlan, MediaFault
from repro.nvm.memory import SimulatedClock, SimulatedMemory
from repro.nvm.persist import TransactionLog
from repro.nvm.pool import NvmPool
from repro.nvm.scrub import REMAP_REGION, SEAL_REGION, MediaGuard
from repro.obs.tracer import Tracer
from repro.obs import tracer as obs

LINE = DeviceProfile.nvm().line_size


def protected_pool(size=1 << 18):
    clock = SimulatedClock()
    mem = SimulatedMemory(DeviceProfile.nvm(), size, clock, name="pool")
    pool = NvmPool(mem, media_protect=True)
    guard = MediaGuard(pool)
    return mem, pool, guard


def data_region(pool, mem, size=4 * LINE):
    """A flushed (sealed) region with a known fill pattern."""
    off = pool.alloc_region("data", size, align=LINE)
    mem.write(off, bytes(i & 0xFF for i in range(size)))
    pool.flush()
    return off, size


class TestMediaFaultModel:
    """Raw-memory semantics of the three UBER fault kinds."""

    def fresh(self):
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 16)
        mem.write(0, bytes(range(256)))
        mem.flush()  # damage is exempt on dirty lines; make them media
        return mem

    def test_bitflip_is_persistent_and_one_time(self):
        mem = self.fresh()
        fault = MediaFault("bitflip", 10, b"\x0f")
        mem.arm_faults(FaultPlan(media_faults=[fault]))
        assert mem.read(10, 1) == bytes([10 ^ 0x0F])
        assert fault.applied
        # Damage is in the image now: later reads see it without the
        # fault re-firing, and disarming changes nothing.
        assert mem.read(10, 1) == bytes([10 ^ 0x0F])
        mem.disarm_faults()
        assert mem.read(10, 1) == bytes([10 ^ 0x0F])

    def test_bitflip_clears_on_rewrite(self):
        mem = self.fresh()
        mem.arm_faults(FaultPlan(media_faults=[MediaFault("bitflip", 10, b"\xff")]))
        mem.read(10, 1)
        mem.write(10, b"\x55")
        mem.flush()
        assert mem.read(10, 1) == b"\x55"

    def test_stuck_line_reimposes_after_rewrite(self):
        mem = self.fresh()
        fault = MediaFault("stuck_line", 32, b"\xff\xff")
        mem.arm_faults(FaultPlan(media_faults=[fault]))
        first = mem.read(32, 2)
        assert first == bytes([32 ^ 0xFF, 33 ^ 0xFF])
        # The cells latched that value: a rewrite does not stick.
        mem.write(32, b"\x00\x00")
        mem.flush()
        assert mem.read(32, 2) == first

    def test_transient_heals_after_fails(self):
        mem = self.fresh()
        fault = MediaFault("transient", 64, b"\xaa", fails=2)
        mem.arm_faults(FaultPlan(media_faults=[fault]))
        assert mem.read(64, 1) == bytes([64 ^ 0xAA])
        assert mem.read(64, 1) == bytes([64 ^ 0xAA])
        assert mem.read(64, 1) == bytes([64])  # healed
        assert fault.healed

    def test_arm_read_defers_firing(self):
        mem = self.fresh()
        fault = MediaFault("bitflip", 5, b"\xff", arm_read=2)
        mem.arm_faults(FaultPlan(media_faults=[fault]))
        assert mem.read(5, 1) == bytes([5])  # read 1: unharmed
        assert mem.read(5, 1) == bytes([5])  # read 2: unharmed
        assert mem.read(5, 1) == bytes([5 ^ 0xFF])  # read 3: fires

    def test_dirty_lines_are_exempt_until_flush(self):
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 16)
        mem.write(0, bytes(range(64)))  # line 0 dirty: freshest copy is
        mem.arm_faults(FaultPlan(media_faults=[MediaFault("bitflip", 3, b"\xff")]))
        assert mem.read(3, 1) == bytes([3])  # volatile, not on media
        mem.flush()
        assert mem.read(3, 1) == bytes([3 ^ 0xFF])

    def test_wear_death_arms_seeded_stuck_lines(self):
        mem = SimulatedMemory(
            DeviceProfile.nvm(), 1 << 16, track_wear=True
        )
        plan = FaultPlan(wear_death=True, wear_limit=2, wear_seed=7)
        mem.arm_faults(plan)
        mem.write(0, b"\x11" * LINE)
        mem.flush()  # program 1: below the limit
        assert not plan.dead_lines
        mem.write(0, b"\x22" * LINE)
        mem.flush()  # program 2 reaches the limit...
        mem.write(0, b"\x33" * LINE)
        mem.flush()  # ...and the next flush's wear check kills line 0
        assert plan.dead_lines == [0]
        damaged = mem.read(0, LINE)
        assert damaged != b"\x33" * LINE
        # Deterministic: the same seed kills with the same mask.
        other = FaultPlan(wear_death=True, wear_limit=2, wear_seed=7)
        assert other is not plan


class TestDetection:
    def test_sealed_read_surfaces_typed_media_error(self):
        mem, pool, guard = protected_pool()
        off, _ = data_region(pool, mem)
        mem.arm_faults(
            FaultPlan(media_faults=[MediaFault("bitflip", off + 3, b"\xff")])
        )
        with pytest.raises(MediaError) as exc_info:
            mem.read(off, 16)
        err = exc_info.value
        assert err.kind == "checksum"
        assert err.line == (off + 3) // LINE
        assert err.offset is not None

    def test_no_faults_reads_clean(self):
        mem, pool, guard = protected_pool()
        off, size = data_region(pool, mem)
        assert mem.read(off, size) == bytes(i & 0xFF for i in range(size))

    def test_eviction_writeback_is_sealed(self):
        """A line programmed by cache eviction (not flush) still gets a
        current seal -- the program-time resealing model."""
        mem, pool, guard = protected_pool()
        off, size = data_region(pool, mem)
        # Rewrite and flush: program-time reseal tracks the new bytes.
        mem.write(off, b"\x7e" * 16)
        pool.flush()
        assert mem.read(off, 16) == b"\x7e" * 16

    def test_reopen_reloads_seals_from_media(self):
        mem, pool, guard = protected_pool()
        off, size = data_region(pool, mem)
        sealed_before = guard.sealed_lines()
        assert sealed_before
        guard.detach()
        # Reopen: a fresh pool object over the same device.
        pool2 = NvmPool(mem)
        pool2.load_directory()
        assert pool2.media_protect
        guard2 = MediaGuard(pool2)
        assert guard2.sealed_lines() == sealed_before
        # And the reloaded seals still verify reads.
        mem.arm_faults(
            FaultPlan(media_faults=[MediaFault("bitflip", off, b"\xff")])
        )
        with pytest.raises(MediaError):
            mem.read(off, 8)


class TestScrub:
    def test_transient_mismatch_heals_with_charged_backoff(self):
        mem, pool, guard = protected_pool()
        off, _ = data_region(pool, mem)
        mem.arm_faults(
            FaultPlan(
                media_faults=[MediaFault("transient", off, b"\xff", fails=2)]
            )
        )
        before = mem.clock.ns
        report = guard.scrub()
        assert report.mismatches == 1
        assert report.corrected == 1
        assert report.quarantined == 0
        # Two backoff retries: base + 2*base simulated ns at minimum.
        assert report.scrub_ns > 0
        assert mem.clock.ns - before >= 3 * guard.retry_base_ns

    def test_bitflip_damage_is_lost_and_quarantined(self):
        mem, pool, guard = protected_pool()
        off, _ = data_region(pool, mem)
        line = off // LINE
        mem.arm_faults(
            FaultPlan(media_faults=[MediaFault("bitflip", off + 1, b"\xff")])
        )
        report = guard.scrub()
        assert report.quarantined == 1
        assert (line, "lost") in report.damaged_lines
        assert report.bad_lines_remapped == 0
        assert line not in guard.remap

    def test_stuck_line_is_remapped(self):
        mem, pool, guard = protected_pool()
        off, _ = data_region(pool, mem)
        line = off // LINE
        mem.arm_faults(
            FaultPlan(
                media_faults=[MediaFault("stuck_line", off, b"\xff\xff")]
            )
        )
        report = guard.scrub()
        assert report.bad_lines_remapped == 1
        assert (line, "stuck") in report.damaged_lines
        assert line in guard.remap
        # translate() redirects any offset on the bad line.
        repl = guard.remap[line]
        assert guard.translate(off + 5) == repl + (off + 5) % LINE
        assert guard.translate(0) == 0  # healthy lines pass through

    def test_scrub_is_idempotent(self):
        mem, pool, guard = protected_pool()
        off, _ = data_region(pool, mem)
        mem.arm_faults(
            FaultPlan(
                media_faults=[
                    MediaFault("bitflip", off, b"\xff"),
                    MediaFault("stuck_line", off + LINE, b"\xaa"),
                ]
            )
        )
        first = guard.scrub()
        assert first.quarantined == 2
        second = guard.scrub()
        assert second.mismatches == 0
        assert second.quarantined == 0

    def test_scrub_emits_obs_spans(self):
        mem, pool, guard = protected_pool()
        off, _ = data_region(pool, mem)
        mem.arm_faults(
            FaultPlan(
                media_faults=[MediaFault("transient", off, b"\xff", fails=1)]
            )
        )
        tracer = Tracer()
        with obs.attached(tracer):
            guard.scrub()
        names = [span.name for span in tracer.spans()]
        assert "scrub:pass" in names
        assert "scrub:retry" in names
        scrub_span = next(s for s in tracer.spans() if s.name == "scrub:pass")
        assert scrub_span.attrs["mismatches"] == 1

    def test_seal_table_damage_self_heals_from_mirror(self):
        """The seal table is the one structure seals cannot cover; the
        mirror is its authority and repairs it."""
        mem, pool, guard = protected_pool()
        data_region(pool, mem)
        table_off, _ = pool.get_region(SEAL_REGION)
        mem.arm_faults(
            FaultPlan(
                media_faults=[MediaFault("bitflip", table_off + 8, b"\xff")]
            )
        )
        report = guard.scrub()
        assert report.table_repaired >= 1
        clean = guard.scrub()
        assert clean.mismatches == 0


class TestRemapCrashConsistency:
    def _scrub_with_crash(self, crash_at_write):
        """Run a stuck-line scrub with a txlog, crashing at the k-th
        write; returns the post-recovery remap state."""
        from repro.core.recovery import recover_pool

        mem, pool, guard = protected_pool()
        off, _ = data_region(pool, mem)
        txlog = TransactionLog(pool, capacity=4096)
        pool.flush()
        plan = FaultPlan(
            "write",
            crash_at_write,
            media_faults=[MediaFault("stuck_line", off, b"\xff")],
        )
        mem.arm_faults(plan)
        crashed = False
        try:
            guard.scrub(txlog=txlog)
        except CrashPoint:
            crashed = True
        mem.disarm_faults()
        if not crashed:
            return None
        mem.crash()
        recover_pool(mem)
        # Reopen the pool and reload the remap table from media.
        pool2 = NvmPool(mem)
        pool2.load_directory()
        guard2 = MediaGuard(pool2)
        return guard2.remap

    def test_crash_anywhere_in_remap_keeps_table_consistent(self):
        """Entry-then-count under the undo log: after a crash at any
        write of the scrub, the reloaded table is either empty or holds
        exactly the completed remap -- never a count without its entry."""
        saw_empty = saw_complete = False
        for k in range(1, 30):
            remap = self._scrub_with_crash(k)
            if remap is None:
                break  # scrub finished before write k; later ks too
            if remap:
                assert len(remap) == 1
                (line,) = remap
                assert remap[line] > 0
                saw_complete = True
            else:
                saw_empty = True
        assert saw_empty  # early crashes must roll the remap back


class TestScrubCrashProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        crash_write=st.integers(min_value=1, max_value=40),
        kind=st.sampled_from(["bitflip", "stuck_line"]),
        mask=st.integers(min_value=1, max_value=255),
    )
    def test_crash_during_scrub_recovers_to_legal_state(
        self, crash_write, kind, mask
    ):
        """Scrub x crash: power loss at any write during a scrub leaves
        an image the PR-3 recovery accepts, with a consistent remap
        table and a scrubbable pool."""
        from repro.core.recovery import recover_pool

        mem, pool, guard = protected_pool()
        off, _ = data_region(pool, mem)
        txlog = TransactionLog(pool, capacity=4096)
        pool.flush()
        plan = FaultPlan(
            "write",
            crash_write,
            media_faults=[MediaFault(kind, off, bytes([mask]))],
        )
        mem.arm_faults(plan)
        try:
            guard.scrub(txlog=txlog)
        except CrashPoint:
            pass
        mem.disarm_faults()
        mem.crash()
        recover_pool(mem)  # must accept the image (legal checkpoint)
        pool2 = NvmPool(mem)
        pool2.load_directory()
        guard2 = MediaGuard(pool2)
        # Remap invariant: every counted entry is complete and points at
        # an in-bounds replacement line.
        for bad, repl in guard2.remap.items():
            assert 0 <= bad * LINE < mem.size
            assert 0 < repl < mem.size
        # The reloaded guard can always scrub to a clean steady state.
        guard2.scrub()
        final = guard2.scrub()
        assert final.quarantined == 0


class TestGuardLayout:
    def test_requires_protected_pool(self):
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 18)
        pool = NvmPool(mem)  # media_protect=False
        from repro.errors import PoolLayoutError

        with pytest.raises(PoolLayoutError):
            MediaGuard(pool)

    def test_guard_regions_are_line_aligned(self):
        mem, pool, guard = protected_pool()
        for region in (SEAL_REGION, REMAP_REGION):
            off, size = pool.get_region(region)
            assert off % LINE == 0
            assert size % LINE == 0
