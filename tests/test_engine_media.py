"""Engine-level media resilience: graceful degradation, quarantine,
scrub + re-analyze, and fused sibling completion."""

import pytest

from repro.analytics import task_by_name
from repro.core.engine import EngineConfig, NTadocEngine, TaskFailure
from repro.errors import ReproError
from repro.harness.faultsweep import _ReadTrace
from repro.nvm.faults import FaultPlan, MediaFault
from repro.obs.tracer import Tracer
from repro.sequitur import compress_files


@pytest.fixture(scope="module")
def corpus():
    phrase = (
        "persistent analytics over compressed text without decompression "
    )
    return compress_files(
        [
            ("a.txt", (phrase + "alpha beta ") * 6),
            ("b.txt", ("beta gamma " + phrase) * 6),
        ]
    )


def protected_engine(corpus, **kwargs):
    return NTadocEngine(
        corpus, EngineConfig(media_protect=True, **kwargs)
    )


def reference(engine, name):
    """Fault-free resilient run plus its traced clean-read points."""
    trace = _ReadTrace()
    plan = FaultPlan()
    plan.on_read = trace
    ref = engine.run_resilient(task_by_name(name), fault_plan=plan)
    assert not ref.failed
    return ref, trace


def fault_at(trace, index=0, kind="bitflip"):
    ordinal, offset, _span = trace.reads[index]
    return MediaFault(kind, offset, b"\xff", arm_read=ordinal - 1)


class TestRunResilient:
    def test_recovers_bit_identical_output(self, corpus):
        engine = protected_engine(corpus)
        ref, trace = reference(engine, "word_count")
        plan = FaultPlan(media_faults=[fault_at(trace, index=2)])
        out = engine.run_resilient(task_by_name("word_count"), fault_plan=plan)
        assert not out.failed
        assert out.result == ref.result
        # Recovery is real, charged work: the clock must have moved.
        assert out.total_ns > ref.total_ns

    def test_recovery_quarantines_damaged_build(self, corpus):
        engine = protected_engine(corpus)
        _, trace = reference(engine, "word_count")
        plan = FaultPlan(media_faults=[fault_at(trace, index=2)])
        out = engine.run_resilient(task_by_name("word_count"), fault_plan=plan)
        assert not out.failed
        names = engine.last_state.pool.region_names()
        assert any(n.startswith("__quarantined") for n in names)

    def test_unprotected_fault_fails_typed(self, corpus):
        engine = NTadocEngine(corpus, EngineConfig(media_protect=False))
        out = engine.run_resilient(task_by_name("word_count"))
        assert not out.failed  # no faults, no guard needed
        # Now arm a fault with no guard: typed failure, no silent answer.
        protected = protected_engine(corpus)
        _, trace = reference(protected, "word_count")
        plan = FaultPlan(media_faults=[fault_at(trace, index=2)])
        out = engine.run_resilient(task_by_name("word_count"), fault_plan=plan)
        if out.failed:  # fault landed on consumed bytes of this layout
            assert out.kind == "unprotected"
            assert isinstance(out, TaskFailure)

    def test_exhausted_recoveries_fail_typed(self, corpus):
        engine = protected_engine(corpus)
        _, trace = reference(engine, "word_count")
        # Stuck damage on every attempt's read path, zero recoveries
        # allowed: the first MediaError must surface as a TaskFailure.
        plan = FaultPlan(
            media_faults=[fault_at(trace, index=2, kind="stuck_line")]
        )
        out = engine.run_resilient(
            task_by_name("word_count"), fault_plan=plan, max_recoveries=0
        )
        assert out.failed
        assert out.kind in ("checksum", "stuck", "lost")
        assert out.error
        assert out.total_ns > 0

    def test_failure_and_result_expose_failed_flag(self, corpus):
        engine = protected_engine(corpus)
        ref, _ = reference(engine, "word_count")
        assert ref.failed is False
        failure = TaskFailure(task="word_count", error="boom", kind="stuck")
        assert failure.failed is True


class TestScrubAndReanalyze:
    def test_scrub_then_rerun_matches_reference(self, corpus):
        engine = protected_engine(corpus)
        ref, trace = reference(engine, "word_count")
        plan = FaultPlan(media_faults=[fault_at(trace, index=2)])
        out = engine.run_resilient(task_by_name("word_count"), fault_plan=plan)
        assert not out.failed
        first = engine.scrub_and_quarantine()
        second = engine.scrub_and_quarantine()
        assert second.mismatches == 0
        assert second.quarantined == 0
        again = engine.rerun_resilient(task_by_name("word_count"))
        assert not again.failed
        assert again.result == ref.result

    def test_scrub_without_resilient_run_raises(self, corpus):
        engine = protected_engine(corpus)
        with pytest.raises(ReproError):
            engine.scrub_and_quarantine()
        with pytest.raises(ReproError):
            engine.rerun_resilient(task_by_name("word_count"))

    def test_recovery_emits_obs_spans(self, corpus):
        tracer = Tracer()
        engine = protected_engine(corpus, tracer=tracer)
        _, trace = reference(engine, "word_count")
        plan = FaultPlan(media_faults=[fault_at(trace, index=2)])
        out = engine.run_resilient(task_by_name("word_count"), fault_plan=plan)
        assert not out.failed
        names = [span.name for span in tracer.spans()]
        assert "recover:media" in names
        assert "scrub:pass" in names
        recover = next(
            s for s in tracer.spans() if s.name == "recover:media"
        )
        assert recover.attrs["quarantined_regions"] >= 1


class TestRunManyResilient:
    TASKS = ("word_count", "inverted_index", "term_vector")

    def test_fault_free_plan_matches_run_many(self, corpus):
        engine = protected_engine(corpus)
        tasks = [task_by_name(n) for n in self.TASKS]
        plan = engine.run_many_resilient(tasks)
        assert not plan.failures
        normal = engine.run_many([task_by_name(n) for n in self.TASKS])
        for a, b in zip(plan.results, normal.results):
            assert a.result == b.result

    def test_siblings_complete_around_damage(self, corpus):
        engine = protected_engine(corpus)
        tasks = [task_by_name(n) for n in self.TASKS]
        trace = _ReadTrace()
        counter = FaultPlan()
        counter.on_read = trace
        ref = engine.run_many_resilient(tasks, fault_plan=counter)
        ref_results = {r.task: r.result for r in ref.results}
        fplan = FaultPlan(media_faults=[fault_at(trace, index=5)])
        out = engine.run_many_resilient(
            [task_by_name(n) for n in self.TASKS], fault_plan=fplan
        )
        assert len(out.results) + len(out.failures) == len(self.TASKS)
        for run in out.results:
            assert run.result == ref_results[run.task]
        for failure in out.failures:
            assert failure.kind  # typed, never silent

    def test_empty_task_list_rejected(self, corpus):
        engine = protected_engine(corpus)
        with pytest.raises(ValueError):
            engine.run_many_resilient([])
