"""End-to-end tests for the crash-sweep harness.

The smoke configuration itself runs in CI (`ntadoc crashsweep --smoke`);
here we run a reduced sweep so the suite stays fast, and assert the two
properties the harness exists for: zero invariant violations across
every enumerated crash point, and bit-identical reports under a fixed
seed.
"""

import json

from repro.harness.crashsweep import SweepConfig, render_report, run_sweep


def reduced_config(seed=20240817):
    return SweepConfig(
        seed=seed,
        engine_write_points=12,
        engine_line_points=6,
        torn_per_flush=2,
        tx_write_points=10,
        tx_torn_points=6,
        integrity_rules=2,
    )


class TestCrashSweep:
    def test_reduced_sweep_has_zero_violations(self):
        report = run_sweep(reduced_config())
        assert report["violations"] == []
        assert report["points_swept"] >= 40
        # Every scenario kind contributed points.
        for kind in (
            "write",
            "flush",
            "torn_flush",
            "line_persist",
            "tx_write",
            "tx_flush",
            "tx_torn_flush",
            "corruption",
        ):
            assert report["by_kind"].get(kind, 0) > 0, kind
        assert report["recoveries"] > 0
        assert report["mean_recovery_ns"] > 0

    def test_sweep_is_deterministic_under_fixed_seed(self):
        first = render_report(run_sweep(reduced_config()))
        second = render_report(run_sweep(reduced_config()))
        assert first == second

    def test_different_seed_changes_sampling_not_results(self):
        a = run_sweep(reduced_config(seed=1))
        b = run_sweep(reduced_config(seed=2))
        assert a["violations"] == [] and b["violations"] == []
        assert render_report(a) != render_report(b)
        # The reference analytics output is seed-independent.
        assert a["result_digest"] == b["result_digest"]

    def test_report_is_valid_sorted_json(self):
        rendered = render_report(run_sweep(reduced_config()))
        parsed = json.loads(rendered)
        assert rendered == json.dumps(parsed, indent=2, sort_keys=True) + "\n"
        assert parsed["seed"] == 20240817
