"""Tests for access-trace recording and cross-device replay."""

import pytest

from repro.errors import CorruptDataError
from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory
from repro.nvm.trace import AccessTrace, record_trace, replay_trace


def run_workload(memory):
    memory.write(0, b"header!!")
    for i in range(32):
        memory.write(256 + i * 64, bytes([i]) * 64)
    for i in range(32):
        memory.read(256 + i * 64, 64)
    memory.flush()


class TestRecording:
    def test_events_captured(self):
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 16)
        with record_trace(mem) as trace:
            run_workload(mem)
        assert len(trace) == 1 + 32 + 32 + 1
        assert trace.bytes_written == 8 + 32 * 64
        assert trace.bytes_read == 32 * 64

    def test_memory_still_functions_while_recording(self):
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 16)
        with record_trace(mem):
            mem.write(0, b"payload")
        assert mem.read(0, 7) == b"payload"

    def test_recording_stops_at_context_exit(self):
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 16)
        with record_trace(mem) as trace:
            mem.write(0, b"x")
        mem.write(8, b"y")  # after the context: not recorded
        assert len(trace) == 1

    def test_costs_unchanged_by_recording(self):
        plain = SimulatedMemory(DeviceProfile.nvm(), 1 << 16)
        run_workload(plain)

        recorded = SimulatedMemory(DeviceProfile.nvm(), 1 << 16)
        with record_trace(recorded):
            run_workload(recorded)
        assert recorded.clock.ns == plain.clock.ns


class TestFillRecording:
    def test_fill_recorded_as_write(self):
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 16)
        with record_trace(mem) as trace:
            mem.fill(128, 4096)
        assert trace.events == [("w", 128, 4096)]
        assert trace.bytes_written == 4096

    def test_zero_size_fill_records_one_event(self):
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 16)
        with record_trace(mem) as trace:
            mem.fill(64, 0)
        assert trace.events == [("w", 64, 0)]

    def test_fill_cost_matches_replay(self):
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 16)
        with record_trace(mem) as trace:
            mem.fill(0, 8192, value=7)
            mem.flush()
        replayed = replay_trace(trace, DeviceProfile.nvm(), cache_bytes=1 << 20)
        assert replayed.ns == pytest.approx(trace.charged_ns)

    def test_fill_restored_after_recording(self):
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 16)
        with record_trace(mem) as trace:
            mem.fill(0, 64)
        mem.fill(64, 64)  # after the context: not recorded
        assert len(trace) == 1


class TestChargedNs:
    def test_charged_ns_accumulates_device_cost(self):
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 16)
        with record_trace(mem) as trace:
            start = mem.clock.ns
            run_workload(mem)
            elapsed = mem.clock.ns - start
        assert trace.charged_ns == pytest.approx(elapsed)

    def test_charged_ns_excludes_untraced_charges(self):
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 16)
        with record_trace(mem) as trace:
            mem.write(0, b"x" * 64)
            mem.clock.cpu(1000)  # CPU work is not device traffic
        assert trace.charged_ns < mem.clock.ns

    def test_charged_ns_not_persisted(self, tmp_path):
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 16)
        with record_trace(mem) as trace:
            run_workload(mem)
        path = tmp_path / "t.trace"
        trace.save(path)
        assert AccessTrace.load(path).charged_ns == 0.0


class TestEngineRunManyTrace:
    def test_fused_plan_trace_replays_to_charged_cost(self):
        """Recording a fused run_many's pool and replaying on the same
        profile reproduces exactly the simulated ns the pool charged."""
        from repro.analytics import InvertedIndex, TermVector, WordCount
        from repro.core.engine import EngineConfig, NTadocEngine
        from repro.datasets.generator import CorpusSpec, generate_corpus_files
        from repro.sequitur.compressor import compress_files

        spec = CorpusSpec(
            n_files=12, tokens_per_file=150, vocab_size=60, seed=417
        )
        corpus = compress_files(generate_corpus_files(spec))
        config = EngineConfig(traversal="bottomup")
        engine = NTadocEngine(corpus, config)

        captured = {}
        original_fresh_state = engine._fresh_state

        def recording_fresh_state(*args, **kwargs):
            state = original_fresh_state(*args, **kwargs)
            recorder = record_trace(state.pool_mem)
            captured["trace"] = recorder.__enter__()
            captured["recorder"] = recorder
            return state

        engine._fresh_state = recording_fresh_state
        try:
            plan = engine.run_many([WordCount(), InvertedIndex(), TermVector()])
        finally:
            captured["recorder"].__exit__(None, None, None)

        trace = captured["trace"]
        assert len(trace) > 100
        assert plan.total_ns > 0
        # Same profile + same cache capacity as the engine's pool device.
        replayed = replay_trace(
            trace, DeviceProfile.nvm(), cache_bytes=config.cache_bytes
        )
        assert replayed.ns == pytest.approx(trace.charged_ns)
        # The pool's device traffic is a strict subset of the plan total
        # (which also includes CPU, DRAM scratch, and disk charges).
        assert 0 < trace.charged_ns < plan.total_ns


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 16)
        with record_trace(mem) as trace:
            run_workload(mem)
        path = tmp_path / "workload.trace"
        trace.save(path)
        restored = AccessTrace.load(path)
        assert restored.events == trace.events
        assert restored.device_size == trace.device_size

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.trace"
        path.write_bytes(b"NOPE" + bytes(32))
        with pytest.raises(CorruptDataError):
            AccessTrace.load(path)

    def test_truncated(self, tmp_path):
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 16)
        with record_trace(mem) as trace:
            run_workload(mem)
        path = tmp_path / "cut.trace"
        trace.save(path)
        path.write_bytes(path.read_bytes()[:-5])
        with pytest.raises(CorruptDataError):
            AccessTrace.load(path)


class TestReplay:
    def record(self):
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 16)
        with record_trace(mem) as trace:
            run_workload(mem)
        return trace, mem.clock.ns

    def test_replay_same_profile_reproduces_cost(self):
        trace, original_ns = self.record()
        replayed = replay_trace(
            trace, DeviceProfile.nvm(), cache_bytes=1 << 20
        )
        assert replayed.ns == pytest.approx(original_ns)

    def test_replay_orders_devices_sensibly(self):
        trace, _ = self.record()
        times = {
            name: replay_trace(trace, DeviceProfile.by_name(name)).ns
            for name in ("dram", "nvm", "pcm", "hdd")
        }
        assert times["dram"] < times["nvm"] < times["pcm"]
        assert times["nvm"] < times["hdd"]

    def test_replay_from_disk(self, tmp_path):
        trace, original_ns = self.record()
        path = tmp_path / "t.trace"
        trace.save(path)
        replayed = replay_trace(
            AccessTrace.load(path), DeviceProfile.nvm(), cache_bytes=1 << 20
        )
        assert replayed.ns == pytest.approx(original_ns)

    def test_replay_engine_workload_on_future_devices(self):
        """The §VI-F methodology: trace a real engine pool once, replay on
        candidate architectures."""
        from repro.core.dag import Dag
        from repro.core.pruning import PrunedDag
        from repro.core.summation import summate_all
        from repro.core.traversal import propagate_weights_topdown
        from repro.nvm.pool import NvmPool
        from repro.sequitur.compressor import compress_files

        corpus = compress_files([("f", "m n o p m n o p q r m n q r " * 20)])
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 20)
        with record_trace(mem) as trace:
            pool = NvmPool(mem)
            dag = Dag(corpus)
            pruned = PrunedDag.build(pool, corpus, dag, bounds=summate_all(dag))
            propagate_weights_topdown(pruned, pool.allocator)
            pool.flush()
        assert len(trace) > 100
        reram_ns = replay_trace(trace, DeviceProfile.reram()).ns
        pcm_ns = replay_trace(trace, DeviceProfile.pcm()).ns
        assert pcm_ns > reram_ns  # PCM's slow writes dominate pool builds
