"""Tests for the DAG view, bottom-up summation, and head/tail lists."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dag import Dag
from repro.core.grammar import RULE_BASE, CompressedCorpus
from repro.core.summation import (
    UNDETERMINED,
    bottom_up_summate,
    head_tail_lists,
    summate_all,
)
from repro.errors import GrammarError
from repro.sequitur.compressor import compress_files


def paper_example_corpus():
    """The Fig. 1e grammar: R0 -> R1 R1 R2 R2, R1 -> R2 R2 w3 w4, R2 -> w1 w2.

    This reproduces both worked examples in the paper exactly: the word
    count weights (R0=1, R1=2, R2=6 -- "R2 receives weight from R1 in the
    next iteration, which makes its weight reach 6") and the Section IV-C
    bounds (R2=2, R1=2+2=4, R0=4+2=6).
    """
    r0 = [RULE_BASE + 1, RULE_BASE + 1, RULE_BASE + 2, RULE_BASE + 2]
    r1 = [RULE_BASE + 2, RULE_BASE + 2, 2, 3]
    r2 = [0, 1]
    return CompressedCorpus(
        rules=[r0, r1, r2], vocab=["w1", "w2", "w3", "w4"],
        file_names=[],
    )


class TestDag:
    def test_subrule_and_word_frequencies(self):
        dag = Dag(paper_example_corpus())
        assert dag.subrule_freq[0] == {1: 2, 2: 2}
        assert dag.word_freq[0] == {}
        assert dag.word_freq[1] == {2: 1, 3: 1}
        assert dag.subrule_freq[2] == {}

    def test_degrees(self):
        dag = Dag(paper_example_corpus())
        assert dag.out_degree == [2, 1, 0]
        assert dag.in_degree == [0, 1, 2]

    def test_topological_order(self):
        dag = Dag(paper_example_corpus())
        order = dag.topological_order()
        position = {rule: i for i, rule in enumerate(order)}
        assert position[0] < position[1] < position[2]

    def test_reverse_topological_order(self):
        dag = Dag(paper_example_corpus())
        assert dag.reverse_topological_order() == list(
            reversed(dag.topological_order())
        )

    def test_cycle_detection(self):
        corpus = CompressedCorpus(
            rules=[[RULE_BASE + 1], [RULE_BASE + 2, 0], [RULE_BASE + 1, 0]],
            vocab=["w"],
            file_names=[],
        )
        with pytest.raises(GrammarError):
            Dag(corpus).topological_order()

    def test_weights_match_paper_example(self):
        """Fig. 1e word-count example: "R1's weight reaches 2 and R2
        reaches 2.  Besides, R2 receives weight from R1 in the next
        iteration, which makes its weight reach 6."."""
        dag = Dag(paper_example_corpus())
        weights = dag.weights()
        assert weights == [1, 2, 6]

    def test_expansion_lengths(self):
        dag = Dag(paper_example_corpus())
        # R2 -> 2 words; R1 -> 2*2 + 2 = 6; R0 -> 2*6 + 2*2 = 16.
        assert dag.expansion_lengths() == [16, 6, 2]

    def test_weights_on_real_corpus(self):
        corpus = compress_files([("f", "a b c a b c a b c a b c")])
        dag = Dag(corpus)
        weights = dag.weights()
        lengths = dag.expansion_lengths()
        # Sum of weight*own-word-occurrences equals total token count.
        total = sum(
            weights[r] * sum(dag.word_freq[r].values())
            for r in range(dag.n_rules)
        )
        assert total == 12
        assert lengths[0] == 12

    def test_reachable_from(self):
        dag = Dag(paper_example_corpus())
        assert dag.reachable_from([2]) == {2}
        assert dag.reachable_from([1]) == {1, 2}
        assert dag.reachable_from([0]) == {0, 1, 2}


class TestSummation:
    def test_paper_example_bounds(self):
        """Section IV-C worked example: bounds are 6, 4, 2."""
        dag = Dag(paper_example_corpus())
        assert summate_all(dag) == [6, 4, 2]

    def test_recursive_matches_iterative(self):
        corpus = compress_files(
            [("f", "x y z x y z w w x y z x y w w z " * 10)]
        )
        dag = Dag(corpus)
        iterative = summate_all(dag)
        recursive = [UNDETERMINED] * dag.n_rules
        bottom_up_summate(0, recursive, dag)
        assert recursive == iterative

    def test_bound_is_a_true_upper_bound(self):
        """The bound must dominate the rule's actual distinct-word count."""
        corpus = compress_files(
            [("f", "a b c d a b c d e f a b e f " * 20), ("g", "a b c d " * 5)]
        )
        dag = Dag(corpus)
        bounds = summate_all(dag)

        def distinct_words(rule: int) -> set[int]:
            words = set(dag.word_freq[rule])
            for sub in dag.subrule_freq[rule]:
                words |= distinct_words(sub)
            return words

        for rule in range(dag.n_rules):
            assert bounds[rule] >= len(distinct_words(rule))

    def test_leaf_bound_equals_word_count(self):
        dag = Dag(paper_example_corpus())
        assert summate_all(dag)[2] == len(dag.word_freq[2])


class TestHeadTailLists:
    def test_leaf_rule(self):
        dag = Dag(paper_example_corpus())
        heads, tails = head_tail_lists(dag, k=2)
        assert heads[2] == [0, 1]
        assert tails[2] == [0, 1]

    def test_nested_rule_head_crosses_subrule(self):
        dag = Dag(paper_example_corpus())
        heads, tails = head_tail_lists(dag, k=3)
        # R1 = R2 R2 w3 w4 expands to w1 w2 w1 w2 w3 w4.
        assert heads[1] == [0, 1, 0]
        assert tails[1] == [1, 2, 3]

    def test_matches_brute_force_expansion(self):
        corpus = compress_files(
            [("f", "p q r s t p q r s t u v p q u v r s " * 8)]
        )
        dag = Dag(corpus)
        for k in (1, 2, 4):
            heads, tails = head_tail_lists(dag, k)
            for rule in range(1, dag.n_rules):
                expansion = [
                    s for s in corpus.expand_rule(rule)
                ]
                assert heads[rule] == expansion[:k], f"head k={k} rule={rule}"
                assert tails[rule] == expansion[-k:], f"tail k={k} rule={rule}"


@settings(max_examples=30, deadline=None)
@given(
    text=st.lists(st.sampled_from("abcde"), min_size=1, max_size=150).map(
        " ".join
    ),
    k=st.integers(1, 4),
)
def test_property_head_tail_equal_expansion_edges(text, k):
    corpus = compress_files([("f", text)])
    dag = Dag(corpus)
    heads, tails = head_tail_lists(dag, k)
    for rule in range(1, dag.n_rules):
        expansion = corpus.expand_rule(rule)
        assert heads[rule] == expansion[:k]
        assert tails[rule] == expansion[-k:]
