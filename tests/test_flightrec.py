"""Flight recorder: ring wraparound, torn-flush decode, crash persistence.

The black box's contract (docs/observability.md):

* Recording is **uncharged** -- pokes only, no clock movement, no dirty
  lines -- and durability rides the device flush.
* The decoder **never returns garbage**: every slot classifies as a
  CRC-verified ``event``, a typed ``torn`` record (magic present, CRC
  mismatch), or ``unknown`` (nonzero bytes without the magic).  A crash
  that tears one flush damages at most one slot.  Checked
  property-based over every possible tear point.
* Wraparound keeps the newest ``nslots`` records, chronologically
  ordered by sequence number.
* ``blackbox_report`` attributes the crash point: the last committed
  phase and the phase left in flight.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm.device import DeviceProfile
from repro.nvm.flightrec import (
    DEFAULT_SLOTS,
    HEADER_SIZE,
    FlightRecorder,
    blackbox_report,
    decode_device_image,
    decode_memory,
    decode_window,
    device_image,
    region_bytes,
)
from repro.nvm.memory import SimulatedMemory
from repro.obs.events import Event, EventJournal

SLOT_SIZE = 256
NSLOTS = 16
WINDOW = HEADER_SIZE + SLOT_SIZE * NSLOTS


def _fresh(size: int = 1 << 16, **kwargs) -> tuple[SimulatedMemory, FlightRecorder]:
    mem = SimulatedMemory(DeviceProfile.nvm(), size)
    recorder = FlightRecorder(mem, 0, WINDOW, slot_size=SLOT_SIZE, **kwargs)
    return mem, recorder


def _event(seq: int, sim_ns: float = 0.0, type: str = "reopen", **detail) -> Event:
    return Event(seq=seq, type=type, severity="info", sim_ns=sim_ns, detail=detail)


def _window_after(n_events: int) -> bytes:
    """The window bytes after ``n_events`` deterministic records."""
    mem, recorder = _fresh()
    for i in range(n_events):
        recorder.record(_event(i, sim_ns=float(i * 10), index=i))
    return mem.peek(0, WINDOW)


class TestRingBasics:
    def test_records_decode_in_order(self):
        mem, recorder = _fresh()
        for i in range(5):
            recorder.record(_event(i, sim_ns=float(i), index=i))
        decoded = decode_memory(mem, 0, WINDOW)
        assert decoded["present"]
        assert decoded["nslots"] == NSLOTS
        records = decoded["records"]
        assert [r.kind for r in records] == ["event"] * 5
        assert [r.seq for r in records] == list(range(5))
        assert [r.detail["index"] for r in records] == list(range(5))

    def test_recording_is_uncharged(self):
        mem, recorder = _fresh()
        before = mem.clock.ns
        for i in range(NSLOTS * 2):
            recorder.record(_event(i))
        assert mem.clock.ns == before
        assert not mem._dirty_lines  # pokes never dirty a line

    def test_wraparound_keeps_newest_nslots(self):
        mem, recorder = _fresh()
        total = NSLOTS + 7
        for i in range(total):
            recorder.record(_event(i, sim_ns=float(i)))
        records = decode_memory(mem, 0, WINDOW)["records"]
        assert len(records) == NSLOTS
        assert [r.seq for r in records] == list(range(7, total))
        assert all(r.kind == "event" for r in records)

    def test_reopen_resumes_sequence(self):
        mem, recorder = _fresh()
        for i in range(3):
            recorder.record(_event(i))
        reopened = FlightRecorder(mem, 0, WINDOW, slot_size=SLOT_SIZE)
        assert reopened.next_seq == 3
        reopened.record(_event(3))
        seqs = [r.seq for r in decode_memory(mem, 0, WINDOW)["records"]]
        assert seqs == [0, 1, 2, 3]

    def test_geometry_mismatch_restarts_ring(self):
        mem, recorder = _fresh()
        recorder.record(_event(0))
        resized = FlightRecorder(mem, 0, WINDOW, slot_size=SLOT_SIZE * 2)
        assert resized.next_seq == 0

    def test_oversized_detail_truncates_typed(self):
        mem, recorder = _fresh()
        recorder.record(_event(0, blob="x" * (SLOT_SIZE * 2)))
        (record,) = decode_memory(mem, 0, WINDOW)["records"]
        assert record.kind == "event"  # CRC covers the truncated payload
        assert record.detail_truncated
        assert record.detail["raw_prefix"].startswith('{"blob"')

    def test_custom_type_round_trips_through_detail(self):
        mem, recorder = _fresh()
        recorder.record(_event(0, type="made_up_type"))
        (record,) = decode_memory(mem, 0, WINDOW)["records"]
        assert record.kind == "event"
        assert record.type == "made_up_type"

    def test_window_too_small_rejected(self):
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 16)
        with pytest.raises(ValueError):
            FlightRecorder(mem, 0, HEADER_SIZE + SLOT_SIZE - 1, slot_size=SLOT_SIZE)
        with pytest.raises(ValueError):
            FlightRecorder(mem, 0, WINDOW, slot_size=8)

    def test_region_bytes_matches_geometry(self):
        assert region_bytes(SLOT_SIZE, NSLOTS) == WINDOW
        assert region_bytes() == HEADER_SIZE + 256 * DEFAULT_SLOTS


class TestTornDecode:
    @given(cut=st.integers(min_value=0, max_value=WINDOW))
    @settings(max_examples=200, deadline=None)
    def test_any_prefix_onto_zeroes_decodes_typed(self, cut):
        """A tear that persisted only ``cut`` bytes of a fresh window
        never yields garbage: at most one damaged slot, and the intact
        events form an exact sequence prefix."""
        full = _window_after(10)
        torn = full[:cut] + bytes(WINDOW - cut)
        decoded = decode_window(torn)
        if not decoded["present"]:
            # Only a tear inside the 16-byte header can make the window
            # undecodable (and even there the zero-padded suffix may
            # still parse as valid geometry).
            assert cut < HEADER_SIZE
            return
        records = decoded["records"]
        assert all(r.kind in ("event", "torn", "unknown") for r in records)
        damaged = [r for r in records if r.kind != "event"]
        assert len(damaged) <= 1
        events = [r for r in records if r.kind == "event"]
        assert [r.seq for r in events] == list(range(len(events)))

    @given(cut=st.integers(min_value=HEADER_SIZE, max_value=WINDOW))
    @settings(max_examples=200, deadline=None)
    def test_any_prefix_onto_old_image_decodes_typed(self, cut):
        """The real torn-flush shape: new window bytes persist up to the
        tear, the rest of the image still holds the previous flush.  The
        mix stays fully typed and chronologically consistent."""
        old = _window_after(4)
        new = _window_after(10)
        decoded = decode_window(new[:cut] + old[cut:])
        assert decoded["present"]
        records = decoded["records"]
        damaged = [r for r in records if r.kind != "event"]
        assert len(damaged) <= 1
        events = [r for r in records if r.kind == "event"]
        seqs = [r.seq for r in events]
        assert seqs == sorted(set(seqs))
        times = [r.sim_ns for r in events]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_mid_slot_cut_classifies_torn(self):
        full = _window_after(3)
        # Cut halfway through the last written slot: magic survives,
        # the CRC in the final 4 bytes does not.
        cut = HEADER_SIZE + 2 * SLOT_SIZE + SLOT_SIZE // 2
        records = decode_window(full[:cut] + bytes(WINDOW - cut))["records"]
        assert [r.kind for r in records] == ["event", "event", "torn"]
        assert records[-1].seq == 2  # header fields are best-effort

    def test_magic_split_classifies_unknown(self):
        full = _window_after(3)
        # One byte of the last slot survives: nonzero, no magic.
        cut = HEADER_SIZE + 2 * SLOT_SIZE + 1
        records = decode_window(full[:cut] + bytes(WINDOW - cut))["records"]
        kinds = sorted(r.kind for r in records)
        assert kinds == ["event", "event", "unknown"]

    def test_junk_window_not_present(self):
        assert not decode_window(b"\xff" * WINDOW)["present"]
        assert not decode_window(b"")["present"]


class TestCrashPersistence:
    def test_ring_survives_flush_then_crash(self):
        mem, recorder = _fresh()
        mem.attach_flight_recorder(recorder)
        for i in range(4):
            recorder.record(_event(i, sim_ns=float(i)))
        mem.flush()
        recorder.record(_event(4))  # recorded but never flushed
        mem.crash()
        records = decode_memory(mem, 0, WINDOW)["records"]
        assert [r.seq for r in records] == [0, 1, 2, 3]

    def test_attach_formats_image_so_first_crash_decodes(self):
        # Attaching persists the freshly-poked header eagerly, so even a
        # crash before the very first flush reveals a decodable (empty)
        # ring rather than zeroes; the unflushed record itself is lost.
        mem, recorder = _fresh()
        mem.attach_flight_recorder(recorder)
        recorder.record(_event(0))
        mem.crash()
        decoded = decode_memory(mem, 0, WINDOW)
        assert decoded["present"]
        assert decoded["records"] == []

    def test_flush_appends_metrics_snapshot_slot(self):
        mem, recorder = _fresh(snapshot_provider=lambda: {"events": 7})
        mem.attach_flight_recorder(recorder)
        recorder.record(_event(0))
        mem.flush()
        mem.crash()
        records = decode_memory(mem, 0, WINDOW)["records"]
        assert [r.type for r in records] == ["reopen", "metrics_snapshot"]
        assert records[-1].severity == "debug"
        assert records[-1].detail == {"events": 7}

    def test_empty_flush_charges_nothing_extra(self):
        mem, recorder = _fresh(snapshot_provider=lambda: {})
        mem.attach_flight_recorder(recorder)
        recorder.record(_event(0))
        before = mem.clock.ns
        mem.flush()  # no dirty lines: persists the window for free
        assert mem.clock.ns == before


class TestDeviceImageRoundTrip:
    def test_image_round_trip_is_uncharged(self):
        from repro.nvm.pool import NvmPool

        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 20)
        pool = NvmPool(mem)
        from repro.nvm.flightrec import FLIGHTREC_REGION

        pool.alloc_region_top(FLIGHTREC_REGION, WINDOW, align=256)
        pool.save_directory()
        offset, size = pool.get_region(FLIGHTREC_REGION)
        recorder = FlightRecorder(mem, offset, size, slot_size=SLOT_SIZE)
        for i in range(3):
            recorder.record(_event(i))
        before = mem.clock.ns
        decoded = decode_device_image(device_image(mem))
        assert mem.clock.ns == before
        assert decoded is not None and decoded["present"]
        assert [r.seq for r in decoded["records"]] == [0, 1, 2]

    def test_junk_and_empty_images_decode_to_none(self):
        assert decode_device_image(b"") is None
        assert decode_device_image(b"not a pool") is None
        assert decode_device_image(bytes(1 << 16)) is None


class TestBlackboxReport:
    def _journal_ring(self, emits) -> dict:
        mem, recorder = _fresh()
        journal = EventJournal()
        journal.bind(clock=mem.clock)
        journal.add_sink(recorder.record)
        for event_type, detail in emits:
            journal.emit(event_type, **detail)
        return decode_memory(mem, 0, WINDOW)

    def test_attributes_in_flight_phase(self):
        decoded = self._journal_ring(
            [
                ("engine_start", {}),
                ("phase_start", {"phase": "initialization"}),
                ("phase_commit", {"phase": "initialization"}),
                ("phase_start", {"phase": "traversal"}),
            ]
        )
        report = blackbox_report(decoded, tail=2)
        assert report["present"]
        assert report["records"] == 4
        assert report["by_kind"] == {"event": 4}
        assert report["last_completed_phase"] == "initialization"
        assert report["in_flight_phase"] == "traversal"
        assert len(report["tail"]) == 2
        assert report["tail"][-1]["type"] == "phase_start"

    def test_nothing_in_flight_after_commit(self):
        decoded = self._journal_ring(
            [
                ("phase_start", {"phase": "initialization"}),
                ("phase_commit", {"phase": "initialization"}),
            ]
        )
        report = blackbox_report(decoded)
        assert report["last_completed_phase"] == "initialization"
        assert report["in_flight_phase"] is None

    def test_empty_ring_reports_cleanly(self):
        mem, _recorder = _fresh()
        report = blackbox_report(decode_memory(mem, 0, WINDOW))
        assert report["present"]
        assert report["records"] == 0
        assert report["last_completed_phase"] is None
        assert report["in_flight_phase"] is None
        assert report["tail"] == []
