"""Tests for character-level tokenization (languages without word
boundaries, per the TADOC line's Chinese-dataset work)."""

import pytest

from repro.analytics.sequence_count import SequenceCount
from repro.analytics.word_count import WordCount
from repro.baselines.uncompressed import UncompressedEngine
from repro.core.engine import EngineConfig, NTadocEngine
from repro.core.ngrams import pack_ngram
from repro.sequitur import serialization
from repro.sequitur.compressor import compress_files
from repro.sequitur.dictionary import tokenize

CHINESE_FILES = [
    ("doc1.txt", "数据压缩分析 数据压缩分析 文本分析"),
    ("doc2.txt", "文本分析不需要解压缩 数据压缩"),
]


class TestTokenizer:
    def test_words_mode(self):
        assert tokenize("Ab cD", "words") == ["ab", "cd"]

    def test_chars_mode(self):
        assert tokenize("ab cd", "chars") == ["a", "b", "c", "d"]

    def test_chars_mode_preserves_case(self):
        assert tokenize("AaBb", "chars") == ["A", "a", "B", "b"]

    def test_chars_mode_cjk(self):
        assert tokenize("数据 压缩", "chars") == ["数", "据", "压", "缩"]

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            tokenize("x", "syllables")


class TestCharModeCorpus:
    def test_lossless_roundtrip(self):
        corpus = compress_files(CHINESE_FILES, token_mode="chars")
        expected = ["".join(text.split()) for _, text in CHINESE_FILES]
        assert corpus.expand_text() == expected

    def test_compression_finds_repeats(self):
        corpus = compress_files(CHINESE_FILES, token_mode="chars")
        # "数据压缩" repeats; the grammar must be smaller than the input.
        tokens = sum(len(f) for f in corpus.expand_files())
        assert corpus.grammar_length() < tokens

    def test_serialization_preserves_mode(self, tmp_path):
        corpus = compress_files(CHINESE_FILES, token_mode="chars")
        path = tmp_path / "cjk.ntdc"
        serialization.save(corpus, path)
        restored = serialization.load(path)
        assert restored.token_mode == "chars"
        assert restored.expand_text() == corpus.expand_text()

    def test_character_count_analytics(self):
        corpus = compress_files(CHINESE_FILES, token_mode="chars")
        run = NTadocEngine(corpus).run(WordCount())
        rendered = {corpus.vocab[w]: c for w, c in run.result.items()}
        all_chars = "".join(
            "".join(text.split()) for _, text in CHINESE_FILES
        )
        assert rendered["数"] == all_chars.count("数")
        assert rendered["缩"] == all_chars.count("缩")

    def test_compressed_matches_baseline(self):
        corpus = compress_files(CHINESE_FILES, token_mode="chars")
        nt = NTadocEngine(corpus).run(WordCount())
        base = UncompressedEngine(corpus, EngineConfig()).run(WordCount())
        assert nt.result == base.result

    def test_character_bigrams(self):
        """Sequence analytics over characters: the n-grams are substrings."""
        corpus = compress_files(CHINESE_FILES, token_mode="chars")
        run = NTadocEngine(corpus).run(SequenceCount())
        ids = {ch: i for i, ch in enumerate(corpus.vocab)}
        key = pack_ngram((ids["压"], ids["缩"]))
        all_text = [
            "".join(text.split()) for _, text in CHINESE_FILES
        ]
        expected = sum(t.count("压缩") for t in all_text)
        assert run.result[key] == expected

    def test_word_mode_is_default(self):
        corpus = compress_files([("f", "a b a b")])
        assert corpus.token_mode == "words"
