"""Unit tests for phase-level and operation-level persistence."""

import pytest

from repro.errors import TransactionError
from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory
from repro.nvm.persist import PhasePersistence, TransactionLog
from repro.nvm.pool import NvmPool


@pytest.fixture
def pool():
    return NvmPool(SimulatedMemory(DeviceProfile.nvm(), 1 << 18))


class TestPhasePersistence:
    def test_initially_no_phase(self, pool):
        pp = PhasePersistence(pool)
        assert pp.last_completed() is None
        assert pp.completed_count() == 0

    def test_phase_completion_recorded(self, pool):
        pp = PhasePersistence(pool)
        with pp.phase("initialization"):
            pass
        assert pp.last_completed() == "initialization"
        assert pp.completed_count() == 1

    def test_phase_sequence(self, pool):
        pp = PhasePersistence(pool)
        with pp.phase("initialization"):
            pass
        with pp.phase("traversal"):
            pass
        assert pp.last_completed() == "traversal"
        assert pp.completed_count() == 2

    def test_phase_marker_survives_crash(self, pool):
        pp = PhasePersistence(pool)
        off = pool.alloc_region("data", 64)
        with pp.phase("initialization"):
            pool.memory.write(off, b"phase one data")
        # crash mid-second-phase
        pool.memory.write(off, b"partial garbage")
        pool.memory.crash()

        recovered = NvmPool(pool.memory)
        recovered.load_directory()
        pp2 = PhasePersistence(recovered)
        assert pp2.last_completed() == "initialization"
        data_off, _ = recovered.get_region("data")
        assert recovered.memory.read(data_off, 14) == b"phase one data"

    def test_failed_phase_not_recorded(self, pool):
        pp = PhasePersistence(pool)
        with pytest.raises(RuntimeError):
            with pp.phase("initialization"):
                raise RuntimeError("interrupted")
        assert pp.last_completed() is None

    def test_phase_flushes_dirty_data(self, pool):
        pp = PhasePersistence(pool)
        off = pool.alloc_region("data", 64)
        with pp.phase("init"):
            pool.memory.write(off, b"persisted")
        assert pool.memory.dirty_line_count == 0


class TestTransactions:
    def test_commit_applies_writes(self, pool):
        off = pool.alloc_region("data", 64)
        log = TransactionLog(pool)
        with log.transaction() as tx:
            tx.write(off, b"committed")
        assert pool.memory.read(off, 9) == b"committed"

    def test_abort_rolls_back(self, pool):
        off = pool.alloc_region("data", 64)
        pool.memory.write(off, b"original")
        log = TransactionLog(pool)
        with pytest.raises(RuntimeError):
            with log.transaction() as tx:
                tx.write(off, b"mutated!")
                raise RuntimeError("fail inside tx")
        assert pool.memory.read(off, 8) == b"original"

    def test_multi_write_rollback_order(self, pool):
        off = pool.alloc_region("data", 64)
        pool.memory.write(off, b"AAAABBBB")
        log = TransactionLog(pool)
        with pytest.raises(RuntimeError):
            with log.transaction() as tx:
                tx.write(off, b"XXXX")
                tx.write(off + 2, b"YYYY")  # overlapping writes
                raise RuntimeError()
        assert pool.memory.read(off, 8) == b"AAAABBBB"

    def test_committed_data_survives_crash(self, pool):
        off = pool.alloc_region("data", 64)
        log = TransactionLog(pool)
        with log.transaction() as tx:
            tx.write(off, b"durable")
        pool.memory.crash()
        assert pool.memory.read(off, 7) == b"durable"

    def test_crash_mid_transaction_recovers_old_value(self, pool):
        off = pool.alloc_region("data", 64)
        pool.flush()
        log = TransactionLog(pool)
        pool.memory.write(off, b"original")
        pool.memory.flush()
        tx = log.begin()
        tx.write(off, b"halfdone")
        pool.memory.crash()

        log2 = TransactionLog(pool)
        assert log2.needs_recovery()
        undone = log2.recover()
        assert undone == 1
        assert pool.memory.read(off, 8) == b"original"
        assert not log2.needs_recovery()

    def test_nested_transaction_rejected(self, pool):
        log = TransactionLog(pool)
        log.begin()
        with pytest.raises(TransactionError):
            log.begin()

    def test_write_after_commit_rejected(self, pool):
        off = pool.alloc_region("data", 64)
        log = TransactionLog(pool)
        tx = log.begin()
        tx.write(off, b"x")
        tx.commit()
        with pytest.raises(TransactionError):
            tx.write(off, b"y")

    def test_log_capacity_enforced(self, pool):
        off = pool.alloc_region("data", 4096)
        log = TransactionLog(pool, capacity=64)
        tx = log.begin()
        with pytest.raises(TransactionError):
            for i in range(10):
                tx.write(off + i * 16, b"0123456789abcdef")

    def test_recover_noop_when_clean(self, pool):
        log = TransactionLog(pool)
        assert log.recover() == 0

    def test_transaction_costs_more_than_raw_write(self, pool):
        """Operation-level persistence pays write amplification (Fig. 5b)."""
        off = pool.alloc_region("data", 4096)
        mem = pool.memory
        log = TransactionLog(pool)

        before = mem.clock.ns
        mem.write(off, b"x" * 64)
        raw_cost = mem.clock.ns - before

        before = mem.clock.ns
        with log.transaction() as tx:
            tx.write(off + 1024, b"x" * 64)
        tx_cost = mem.clock.ns - before
        assert tx_cost > 3 * raw_cost
