"""Unit tests for phase-level and operation-level persistence."""

import pytest

from repro.errors import TransactionError
from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory
from repro.nvm.persist import PhasePersistence, TransactionLog
from repro.nvm.pool import NvmPool


@pytest.fixture
def pool():
    return NvmPool(SimulatedMemory(DeviceProfile.nvm(), 1 << 18))


class TestPhasePersistence:
    def test_initially_no_phase(self, pool):
        pp = PhasePersistence(pool)
        assert pp.last_completed() is None
        assert pp.completed_count() == 0

    def test_phase_completion_recorded(self, pool):
        pp = PhasePersistence(pool)
        with pp.phase("initialization"):
            pass
        assert pp.last_completed() == "initialization"
        assert pp.completed_count() == 1

    def test_phase_sequence(self, pool):
        pp = PhasePersistence(pool)
        with pp.phase("initialization"):
            pass
        with pp.phase("traversal"):
            pass
        assert pp.last_completed() == "traversal"
        assert pp.completed_count() == 2

    def test_phase_marker_survives_crash(self, pool):
        pp = PhasePersistence(pool)
        off = pool.alloc_region("data", 64)
        with pp.phase("initialization"):
            pool.memory.write(off, b"phase one data")
        # crash mid-second-phase
        pool.memory.write(off, b"partial garbage")
        pool.memory.crash()

        recovered = NvmPool(pool.memory)
        recovered.load_directory()
        pp2 = PhasePersistence(recovered)
        assert pp2.last_completed() == "initialization"
        data_off, _ = recovered.get_region("data")
        assert recovered.memory.read(data_off, 14) == b"phase one data"

    def test_failed_phase_not_recorded(self, pool):
        pp = PhasePersistence(pool)
        with pytest.raises(RuntimeError):
            with pp.phase("initialization"):
                raise RuntimeError("interrupted")
        assert pp.last_completed() is None

    def test_phase_flushes_dirty_data(self, pool):
        pp = PhasePersistence(pool)
        off = pool.alloc_region("data", 64)
        with pp.phase("init"):
            pool.memory.write(off, b"persisted")
        assert pool.memory.dirty_line_count == 0


class TestTransactions:
    def test_commit_applies_writes(self, pool):
        off = pool.alloc_region("data", 64)
        log = TransactionLog(pool)
        with log.transaction() as tx:
            tx.write(off, b"committed")
        assert pool.memory.read(off, 9) == b"committed"

    def test_abort_rolls_back(self, pool):
        off = pool.alloc_region("data", 64)
        pool.memory.write(off, b"original")
        log = TransactionLog(pool)
        with pytest.raises(RuntimeError):
            with log.transaction() as tx:
                tx.write(off, b"mutated!")
                raise RuntimeError("fail inside tx")
        assert pool.memory.read(off, 8) == b"original"

    def test_multi_write_rollback_order(self, pool):
        off = pool.alloc_region("data", 64)
        pool.memory.write(off, b"AAAABBBB")
        log = TransactionLog(pool)
        with pytest.raises(RuntimeError):
            with log.transaction() as tx:
                tx.write(off, b"XXXX")
                tx.write(off + 2, b"YYYY")  # overlapping writes
                raise RuntimeError()
        assert pool.memory.read(off, 8) == b"AAAABBBB"

    def test_committed_data_survives_crash(self, pool):
        off = pool.alloc_region("data", 64)
        log = TransactionLog(pool)
        with log.transaction() as tx:
            tx.write(off, b"durable")
        pool.memory.crash()
        assert pool.memory.read(off, 7) == b"durable"

    def test_crash_mid_transaction_recovers_old_value(self, pool):
        off = pool.alloc_region("data", 64)
        pool.flush()
        log = TransactionLog(pool)
        pool.memory.write(off, b"original")
        pool.memory.flush()
        tx = log.begin()
        tx.write(off, b"halfdone")
        pool.memory.crash()

        log2 = TransactionLog(pool)
        assert log2.needs_recovery()
        undone = log2.recover()
        assert undone == 1
        assert pool.memory.read(off, 8) == b"original"
        assert not log2.needs_recovery()

    def test_nested_transaction_rejected(self, pool):
        log = TransactionLog(pool)
        log.begin()
        with pytest.raises(TransactionError):
            log.begin()

    def test_write_after_commit_rejected(self, pool):
        off = pool.alloc_region("data", 64)
        log = TransactionLog(pool)
        tx = log.begin()
        tx.write(off, b"x")
        tx.commit()
        with pytest.raises(TransactionError):
            tx.write(off, b"y")

    def test_log_capacity_enforced(self, pool):
        off = pool.alloc_region("data", 4096)
        log = TransactionLog(pool, capacity=64)
        tx = log.begin()
        with pytest.raises(TransactionError):
            for i in range(10):
                tx.write(off + i * 16, b"0123456789abcdef")

    def test_recover_noop_when_clean(self, pool):
        log = TransactionLog(pool)
        assert log.recover() == 0

    def test_transaction_costs_more_than_raw_write(self, pool):
        """Operation-level persistence pays write amplification (Fig. 5b)."""
        off = pool.alloc_region("data", 4096)
        mem = pool.memory
        log = TransactionLog(pool)

        before = mem.clock.ns
        mem.write(off, b"x" * 64)
        raw_cost = mem.clock.ns - before

        before = mem.clock.ns
        with log.transaction() as tx:
            tx.write(off + 1024, b"x" * 64)
        tx_cost = mem.clock.ns - before
        assert tx_cost > 3 * raw_cost


class TestTornMarkerPingPong:
    def test_torn_marker_mid_line_falls_back_to_previous_slot(self, pool):
        """The acceptance case: power fails mid-way through the marker
        slot's own flush, leaving half a slot on media.  The CRC rejects
        the torn slot and the reader falls back to the other ping-pong
        slot -- it must neither raise nor trust garbage."""
        from repro.errors import CrashPoint
        from repro.nvm.faults import FaultPlan, TornFlush
        from repro.nvm.persist import _PHASE_SLOT_SIZE

        mem = pool.memory
        pp = PhasePersistence(pool)
        with pp.phase("initialization"):
            pool.alloc_region("data", 64)
        assert pp.last_completed() == "initialization"  # count 1, slot 1

        # Completing "traversal" writes count 2 into slot 0.  Tear that
        # flush mid-slot: the marker line persists only up to an atomic
        # unit inside slot 0's 40 bytes.
        marker_off, _ = pool.get_region("__phases__")
        line_size = mem.profile.line_size
        in_line = marker_off % line_size
        cut = in_line + _PHASE_SLOT_SIZE // 2 // 8 * 8  # mid-slot, 8-aligned
        pool.flush()
        mem.arm_faults(
            FaultPlan("flush", 1, torn=TornFlush(None, 0, cut))
        )
        with pytest.raises(CrashPoint):
            pp.complete_phase("traversal")
        mem.disarm_faults()
        mem.crash()

        recovered = PhasePersistence(pool)
        assert recovered.last_completed() == "initialization"
        assert recovered.completed_count() == 1

    def test_marker_alternates_slots(self, pool):
        from repro.nvm.persist import _PHASE_SLOT_SIZE

        pp = PhasePersistence(pool)
        offset, _ = pool.get_region("__phases__")
        with pp.phase("a"):
            pass
        slot1 = pool.memory.read(offset + _PHASE_SLOT_SIZE, _PHASE_SLOT_SIZE)
        with pp.phase("b"):
            pass
        # Completing "b" (count 2) went to slot 0; slot 1 is untouched.
        assert (
            pool.memory.read(offset + _PHASE_SLOT_SIZE, _PHASE_SLOT_SIZE)
            == slot1
        )
        assert pp.last_completed() == "b"


class TestUndoLogValidation:
    def test_corrupt_early_record_raises_with_index(self, pool):
        import struct

        from repro.errors import RecoveryError
        from repro.nvm.persist import _LOG_HEADER_SIZE

        off = pool.alloc_region("data", 64)
        mem = pool.memory
        mem.fill(off, 64)
        log = TransactionLog(pool)
        pool.flush()
        tx = log.begin()
        tx.write(off, b"AAAAAAAA")
        tx.write(off + 8, b"BBBBBBBB")
        tx.write(off + 16, b"CCCCCCCC")
        mem.flush()
        mem.crash()

        log_off, _ = pool.get_region("__txlog__")
        # Flip a byte inside record 0's header: non-tail corruption.
        raw = mem.read(log_off + _LOG_HEADER_SIZE, 1)
        mem.write(
            log_off + _LOG_HEADER_SIZE, bytes([raw[0] ^ 0xFF])
        )
        fresh = TransactionLog(pool)
        with pytest.raises(RecoveryError, match=r"record 0 of 3"):
            fresh.recover()

    def test_corrupt_tail_record_truncates(self, pool):
        from repro.nvm.persist import _LOG_HEADER_SIZE, _LOG_RECORD_SIZE

        off = pool.alloc_region("data", 64)
        mem = pool.memory
        mem.fill(off, 64)
        log = TransactionLog(pool)
        pool.flush()
        tx = log.begin()
        tx.write(off, b"AAAAAAAA")
        tx.write(off + 8, b"BBBBBBBB")
        mem.flush()
        mem.crash()

        log_off, _ = pool.get_region("__txlog__")
        second = log_off + _LOG_HEADER_SIZE + _LOG_RECORD_SIZE + 8
        raw = mem.read(second, 1)
        mem.write(second, bytes([raw[0] ^ 0xFF]))
        fresh = TransactionLog(pool)
        # Only the torn tail is skipped; the validated record rolls back.
        assert fresh.recover() == 1
        assert mem.read(off, 8) == bytes(8)

    def test_out_of_bounds_record_raises(self, pool):
        import struct

        from repro.errors import RecoveryError
        from repro.nvm.persist import _LOG_HEADER_FMT, _LOG_HEADER_SIZE

        from repro.nvm.persist import _LOG_RECORD_FMT

        log = TransactionLog(pool)
        log_off, _ = pool.get_region("__txlog__")
        mem = pool.memory
        # Forge an active two-record header whose first record claims
        # more bytes than the region holds; a non-tail record may not
        # fall back to torn-tail truncation.
        mem.write(log_off, struct.pack(_LOG_HEADER_FMT, 1, 2, 1))
        mem.write(
            log_off + _LOG_HEADER_SIZE,
            struct.pack(_LOG_RECORD_FMT, 0, 1 << 20, 0),
        )
        with pytest.raises(RecoveryError, match="overruns the log region"):
            log.recover()

    def test_stale_record_from_previous_tx_never_replays(self, pool):
        """Record slots are reused across transactions; a stale record
        must fail validation (its CRC is sealed with the old sequence
        number) instead of un-committing the previous transaction."""
        import struct

        from repro.nvm.persist import _LOG_HEADER_FMT

        off = pool.alloc_region("data", 64)
        mem = pool.memory
        mem.fill(off, 64)
        log = TransactionLog(pool)
        pool.flush()
        with log.transaction() as tx:
            tx.write(off, b"COMMITED")
        # Model the torn flush the crash sweep found: a second
        # transaction's header (count=1) persists while its record slot
        # still holds the first transaction's bytes.
        log_off, _ = pool.get_region("__txlog__")
        _, _, seq = struct.unpack(
            _LOG_HEADER_FMT, mem.read(log_off, 16)
        )
        mem.write(log_off, struct.pack(_LOG_HEADER_FMT, 1, 1, seq + 1))
        mem.flush()
        mem.crash()

        fresh = TransactionLog(pool)
        assert fresh.needs_recovery()
        assert fresh.recover() == 0  # stale tail skipped, nothing undone
        assert mem.read(off, 8) == b"COMMITED"


class TestTransactionErrorReporting:
    def test_full_log_error_carries_sizes(self, pool):
        off = pool.alloc_region("data", 4096)
        log = TransactionLog(pool, capacity=64)
        tx = log.begin()
        with pytest.raises(TransactionError) as excinfo:
            for i in range(10):
                tx.write(off + i * 16, b"0123456789abcdef")
        err = excinfo.value
        assert err.required is not None and err.required > 0
        assert err.available is not None and err.available >= 0
        assert err.required > err.available
        assert "docs/recovery.md" in str(err)

    def test_misuse_errors_have_no_sizes(self, pool):
        log = TransactionLog(pool)
        log.begin()
        with pytest.raises(TransactionError) as excinfo:
            log.begin()
        assert excinfo.value.required is None
        assert excinfo.value.available is None


class TestAutoCapacity:
    def test_log_grows_instead_of_raising(self, pool):
        off = pool.alloc_region("data", 4096)
        log = TransactionLog(pool, capacity=64, auto_capacity=True)
        with log.transaction() as tx:
            for i in range(10):
                tx.write(off + i * 16, b"0123456789abcdef")
        assert log.capacity > 64
        assert pool.get_region("__txlog__")[1] == log.capacity
        for i in range(10):
            assert pool.memory.read(off + i * 16, 16) == b"0123456789abcdef"

    def test_grown_log_still_recovers(self, pool):
        off = pool.alloc_region("data", 4096)
        mem = pool.memory
        mem.fill(off, 160)
        log = TransactionLog(pool, capacity=64, auto_capacity=True)
        pool.flush()
        tx = log.begin()
        for i in range(10):
            tx.write(off + i * 16, b"0123456789abcdef")
        mem.flush()
        mem.crash()

        from repro.core.recovery import recover_pool

        report = recover_pool(mem)
        assert report.transactions_rolled_back == 10
        assert report.pool.memory.read(off, 160) == bytes(160)
