"""Fused-plan equivalence: run_many == sequential run(), bit-identical.

The shared-traversal planner (repro.core.plan) must never change what a
task computes -- only how many device passes pay for it.  "Bit-identical"
is the crash-sweep harness's definition: canonical sorted-key JSON of
the result object.

Also covered: plan statistics (one pool build, at most one DAG pass per
direction), per-task time attribution (a partition of the plan's single
charge), the baselines' sequential run_many, and a crash/resume smoke
case through the fused path.
"""

import pytest

from repro.analytics import (
    ALL_TASKS,
    InvertedIndex,
    RankedInvertedIndex,
    SequenceCount,
    Sort,
    TermVector,
    WordCount,
)
from repro.analytics.locate import WordLocate
from repro.analytics.search import WordSearch
from repro.baselines.uncompressed import UncompressedEngine
from repro.core.engine import EngineConfig, NTadocEngine
from repro.core.recovery import recover_pool
from repro.datasets.generator import CorpusSpec, generate_corpus_files
from repro.errors import CrashPoint
from repro.harness.crashsweep import canonical_result
from repro.harness.runner import run_many_system
from repro.nvm.faults import FaultPlan
from repro.sequitur.compressor import compress_files


@pytest.fixture(scope="module")
def corpus():
    spec = CorpusSpec(
        n_files=24, tokens_per_file=220, vocab_size=90, seed=1301
    )
    return compress_files(generate_corpus_files(spec))


def make_tasks(engine):
    """One instance of every task, including the query-shaped ones."""
    explens = engine._dag.expansion_lengths()
    return [
        WordCount(),
        Sort(),
        TermVector(),
        InvertedIndex(),
        SequenceCount(),
        RankedInvertedIndex(),
        WordSearch([2, 5, 9]),
        WordLocate(4, explens),
    ]


CONFIGS = {
    "auto": EngineConfig(),
    "topdown": EngineConfig(traversal="topdown"),
    "bottomup": EngineConfig(traversal="bottomup"),
    "operation": EngineConfig(persistence="operation"),
}


class TestFusedEquivalence:
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    def test_all_tasks_fused_match_sequential(self, corpus, config_name):
        engine = NTadocEngine(corpus, CONFIGS[config_name])
        sequential = [engine.run(task) for task in make_tasks(engine)]
        plan = engine.run_many(make_tasks(engine))
        assert len(plan) == len(sequential)
        for solo, fused in zip(sequential, plan):
            assert canonical_result(fused.result) == canonical_result(
                solo.result
            ), f"{solo.task} diverged under config {config_name}"
            assert fused.fused and not solo.fused

    def test_each_task_solo_plan_matches_run(self, corpus):
        engine = NTadocEngine(corpus)
        for task, again in zip(make_tasks(engine), make_tasks(engine)):
            solo = engine.run(task)
            plan = engine.run_many([again])
            assert canonical_result(plan[0].result) == canonical_result(
                solo.result
            ), task.name

    @pytest.mark.parametrize(
        "combo",
        [
            (WordCount, InvertedIndex),
            (Sort, SequenceCount),
            (TermVector, RankedInvertedIndex),
            (WordCount, TermVector, SequenceCount, InvertedIndex),
        ],
    )
    def test_sampled_combos(self, corpus, combo):
        engine = NTadocEngine(corpus)
        tasks = [cls() for cls in combo]
        sequential = [engine.run(cls()) for cls in combo]
        plan = engine.run_many(tasks)
        for solo, fused in zip(sequential, plan):
            assert canonical_result(fused.result) == canonical_result(
                solo.result
            )


class TestPlanShape:
    def test_acceptance_trio_single_build_single_passes(self, corpus):
        engine = NTadocEngine(corpus)
        plan = engine.run_many([WordCount(), InvertedIndex(), TermVector()])
        stats = plan.stats
        assert stats.fused
        assert stats.pool_builds == 1
        assert all(count <= 1 for count in stats.dag_passes.values())
        assert stats.segment_sweeps <= 1
        assert stats.n_tasks == 3

    def test_whole_suite_stays_at_one_pass_per_direction(self, corpus):
        engine = NTadocEngine(corpus)
        plan = engine.run_many(make_tasks(engine))
        assert plan.stats.pool_builds == 1
        assert all(c <= 1 for c in plan.stats.dag_passes.values())

    def test_groups_name_every_task(self, corpus):
        engine = NTadocEngine(corpus)
        plan = engine.run_many([WordCount(), InvertedIndex()])
        named = [n for names in plan.stats.groups.values() for n in names]
        assert sorted(named) == ["inverted_index", "word_count"]

    def test_attribution_partitions_the_single_charge(self, corpus):
        engine = NTadocEngine(corpus)
        plan = engine.run_many([WordCount(), InvertedIndex(), TermVector()])
        assert plan.total_ns > 0
        attributed = sum(run.total_ns for run in plan)
        assert attributed == pytest.approx(plan.total_ns, rel=1e-9)
        for run in plan:
            assert run.shared_ns >= 0
            assert run.exclusive_ns >= 0
            assert run.total_ns == pytest.approx(
                run.shared_ns + run.exclusive_ns, rel=1e-9
            )

    def test_fused_plan_is_cheaper_than_sequential(self, corpus):
        engine = NTadocEngine(corpus)
        tasks = [WordCount(), InvertedIndex(), TermVector()]
        sequential_ns = sum(
            engine.run(type(task)()).total_ns for task in tasks
        )
        plan = engine.run_many(tasks)
        assert plan.total_ns < sequential_ns

    def test_by_task_lookup(self, corpus):
        engine = NTadocEngine(corpus)
        plan = engine.run_many([WordCount(), InvertedIndex()])
        assert plan.by_task("inverted_index").task == "inverted_index"
        with pytest.raises(KeyError):
            plan.by_task("frequency_hologram")

    def test_empty_plan_rejected(self, corpus):
        engine = NTadocEngine(corpus)
        with pytest.raises(ValueError):
            engine.run_many([])


class TestBaselinePlans:
    def test_uncompressed_run_many_is_sequential(self, corpus):
        engine = UncompressedEngine(corpus)
        solo = [engine.run(WordCount()), engine.run(InvertedIndex())]
        plan = engine.run_many([WordCount(), InvertedIndex()])
        assert not plan.stats.fused
        assert plan.stats.pool_builds == 2
        for s, p in zip(solo, plan):
            assert canonical_result(p.result) == canonical_result(s.result)
        assert plan.total_ns == pytest.approx(
            sum(run.total_ns for run in plan)
        )

    def test_naive_port_run_many_is_sequential(self, corpus):
        plan = run_many_system("naive_nvm", corpus, [WordCount(), Sort()])
        assert not plan.stats.fused
        assert plan.stats.pool_builds == 2

    def test_registry_fuses_ntadoc(self, corpus):
        plan = run_many_system("ntadoc", corpus, [WordCount(), Sort()])
        assert plan.stats.fused
        assert plan.stats.pool_builds == 1


class TestFusedCrashResume:
    """Crash a fused plan mid-traversal; resume must be bit-identical."""

    def test_crash_mid_fused_traversal_and_resume(self, corpus):
        tasks = [WordCount(), InvertedIndex(), TermVector()]
        engine = NTadocEngine(corpus)
        counter = FaultPlan()
        reference = engine.run_many(
            [WordCount(), InvertedIndex(), TermVector()], fault_plan=counter
        )
        reference_json = [canonical_result(r.result) for r in reference]
        profiles = counter.flush_profiles
        # Phase persistence emits 4 flushes; the marker after flush #2
        # checkpoints initialization.  Pick a write ordinal strictly
        # between the init checkpoint and the end of the run: the crash
        # lands mid-fused-traversal.
        assert len(profiles) == 4
        after_init = profiles[1]["writes_before"]
        total_writes = counter.events["write"]
        assert total_writes > after_init + 2
        crash_at = after_init + (total_writes - after_init) // 2

        plan = FaultPlan("write", crash_at)
        with pytest.raises(CrashPoint):
            engine.run_many(tasks, fault_plan=plan)
        mem = plan.memory
        mem.disarm_faults()
        mem.crash()
        report = recover_pool(mem)
        assert report.last_completed_phase == "initialization"
        assert report.pruned is not None

        resumed = engine.run_many(
            [WordCount(), InvertedIndex(), TermVector()], resume_from=report
        )
        assert [canonical_result(r.result) for r in resumed] == reference_json
        assert all(run.resumed for run in resumed)

    def test_resume_after_pre_checkpoint_crash_rebuilds(self, corpus):
        tasks = lambda: [WordCount(), Sort()]  # noqa: E731
        engine = NTadocEngine(corpus)
        reference = engine.run_many(tasks())
        plan = FaultPlan("write", 3)  # long before the init checkpoint
        with pytest.raises(CrashPoint):
            engine.run_many(tasks(), fault_plan=plan)
        mem = plan.memory
        mem.disarm_faults()
        mem.crash()
        # Nothing checkpointed: recovery either refuses (full restart) or
        # reports a rebuild; run_many(resume_from=...) must still produce
        # the uncrashed results by rebuilding.
        try:
            report = recover_pool(mem)
        except Exception:
            resumed = engine.run_many(tasks())
        else:
            resumed = engine.run_many(tasks(), resume_from=report)
        assert [canonical_result(r.result) for r in resumed] == [
            canonical_result(r.result) for r in reference
        ]


class TestTracedEquivalence:
    """Attaching a span tracer must not move a single charged nanosecond."""

    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    def test_traced_plan_is_bit_identical(self, corpus, config_name):
        from dataclasses import replace

        from repro.obs.tracer import Tracer

        base_config = CONFIGS[config_name]
        plain_engine = NTadocEngine(corpus, base_config)
        plain = plain_engine.run_many(make_tasks(plain_engine))

        tracer = Tracer()
        traced_engine = NTadocEngine(
            corpus, replace(base_config, tracer=tracer)
        )
        traced = traced_engine.run_many(make_tasks(traced_engine))

        assert traced.total_ns == plain.total_ns  # bit-identical, no approx
        assert traced.phase_ns == plain.phase_ns
        for solo, other in zip(plain.results, traced.results):
            assert canonical_result(other.result) == canonical_result(
                solo.result
            )
            assert other.total_ns == solo.total_ns
            assert other.exclusive_ns == solo.exclusive_ns
        # And the trace itself partitions the plan's single charge.
        assert tracer.total_sim_ns() == traced.total_ns

    def test_traced_solo_is_bit_identical(self, corpus):
        from dataclasses import replace

        from repro.obs.tracer import Tracer

        plain = NTadocEngine(corpus, CONFIGS["auto"]).run(WordCount())
        tracer = Tracer()
        traced = NTadocEngine(
            corpus, replace(CONFIGS["auto"], tracer=tracer)
        ).run(WordCount())
        assert traced.total_ns == plain.total_ns
        assert canonical_result(traced.result) == canonical_result(
            plain.result
        )


def test_all_tasks_registry_untouched():
    # The planner must not have narrowed the benchmark suite.
    assert len(ALL_TASKS) == 6
