"""Tests for random access into compressed data (paper reference [4])."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dag import Dag
from repro.core.pruning import PrunedDag
from repro.core.random_access import RandomAccessor
from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory
from repro.nvm.pool import NvmPool
from repro.sequitur.compressor import compress_files


def build(files):
    corpus = compress_files(files)
    dag = Dag(corpus)
    pool = NvmPool(SimulatedMemory(DeviceProfile.nvm(), 1 << 21))
    pruned = PrunedDag.build(pool, corpus, dag)
    accessor = RandomAccessor(pruned, dag.expansion_lengths())
    return corpus, accessor, pool


FILES = [
    ("f1", "alpha beta gamma delta alpha beta gamma delta epsilon"),
    ("f2", "zeta eta theta zeta eta theta iota"),
    ("f3", ""),
    ("f4", "solo"),
]


class TestGeometry:
    def test_n_files(self):
        _, accessor, _ = build(FILES)
        assert accessor.n_files == 4

    def test_file_lengths_without_expansion(self):
        corpus, accessor, _ = build(FILES)
        expected = [len(f) for f in corpus.expand_files()]
        assert [accessor.file_length(i) for i in range(4)] == expected

    def test_mismatched_lengths_rejected(self):
        corpus, accessor, pool = build(FILES)
        wrong = [1] * (corpus.n_rules + 1)
        with pytest.raises(ValueError):
            RandomAccessor(accessor.pruned, wrong)


class TestAccess:
    def test_word_at_every_position(self):
        corpus, accessor, _ = build(FILES)
        for file_index, tokens in enumerate(corpus.expand_files()):
            for position, expected in enumerate(tokens):
                assert accessor.word_at(file_index, position) == expected

    def test_word_at_out_of_range(self):
        _, accessor, _ = build(FILES)
        with pytest.raises(IndexError):
            accessor.word_at(0, 10_000)
        with pytest.raises(IndexError):
            accessor.word_at(2, 0)  # empty file

    def test_slice_matches_expansion(self):
        corpus, accessor, _ = build(FILES)
        tokens = corpus.expand_files()[0]
        assert accessor.slice(0, 2, 6) == tokens[2:6]
        assert accessor.slice(0, 0, len(tokens)) == tokens

    def test_slice_clamps_stop(self):
        corpus, accessor, _ = build(FILES)
        tokens = corpus.expand_files()[0]
        assert accessor.slice(0, 3, 10_000) == tokens[3:]

    def test_empty_slice(self):
        _, accessor, _ = build(FILES)
        assert accessor.slice(0, 4, 4) == []
        assert accessor.slice(0, 6, 2) == []

    def test_bad_file_index(self):
        _, accessor, _ = build(FILES)
        with pytest.raises(IndexError):
            accessor.slice(9, 0, 1)

    def test_extract_file(self):
        corpus, accessor, _ = build(FILES)
        for i, tokens in enumerate(corpus.expand_files()):
            assert accessor.extract_file(i) == tokens


class TestAccessCost:
    def test_point_access_cheaper_than_full_expansion(self):
        """The point of the technique: a one-word read must not expand
        the whole document."""
        text = "prefix " + "the same repeated block of words " * 120 + "needle"
        corpus, accessor, pool = build([("big", text)])
        length = accessor.file_length(0)

        start = pool.memory.clock.ns
        accessor.word_at(0, length - 1)
        point_cost = pool.memory.clock.ns - start

        start = pool.memory.clock.ns
        accessor.extract_file(0)
        full_cost = pool.memory.clock.ns - start
        assert point_cost < full_cost / 5


@settings(max_examples=30, deadline=None)
@given(
    text=st.lists(st.sampled_from("abcd"), min_size=1, max_size=120).map(
        " ".join
    ),
    bounds=st.tuples(st.integers(0, 130), st.integers(0, 130)),
)
def test_property_slices_match_expansion(text, bounds):
    corpus, accessor, _ = build([("f", text)])
    tokens = corpus.expand_files()[0]
    start, stop = min(bounds), max(bounds)
    assert accessor.slice(0, start, stop) == tokens[start:stop]
