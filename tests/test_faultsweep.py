"""End-to-end tests for the media-fault sweep harness.

The smoke configuration itself runs in CI (`ntadoc faultsweep --smoke`);
here we run a reduced sweep so the suite stays fast, and assert the
properties the harness exists for: every fault point lands in the
resilience triad (corrected / detected-and-recovered / quarantined with
a typed error) with zero silent wrong answers, and reports are
bit-identical under a fixed seed.
"""

import json

from repro.harness.faultsweep import (
    FaultSweepConfig,
    render_report,
    run_sweep,
)


def reduced_config(seed=20240817):
    return FaultSweepConfig(
        seed=seed,
        tasks=("word_count",),
        second_kind_points=9,
        wear_points=2,
        infra_points=3,
        fused_points=3,
    )


class TestFaultSweep:
    def test_reduced_sweep_has_zero_violations(self):
        report = run_sweep(reduced_config())
        assert report["violations"] == []
        assert report["silent_wrong_answers"] == 0
        assert report["points_swept"] >= 20
        # Every media-fault kind contributed points.
        for kind in ("bitflip", "stuck_line", "transient"):
            assert report["by_kind"].get(kind, 0) > 0, kind
        assert report["outcomes"]["detected_recovered"] > 0
        # Recovery charges simulated time; the mean must be visible.
        assert report["mean_recovery_extra_ns"] > 0

    def test_scrub_leg_reanalyzes_bit_identically(self):
        report = run_sweep(reduced_config())
        assert report["reanalyzed_identical"] > 0
        # Whatever the scrub leg could not re-analyze failed *typed*.
        assert report["violations"] == []

    def test_sweep_is_deterministic_under_fixed_seed(self):
        first = render_report(run_sweep(reduced_config()))
        second = render_report(run_sweep(reduced_config()))
        assert first == second

    def test_different_seed_changes_sampling_not_verdicts(self):
        a = run_sweep(reduced_config(seed=1))
        b = run_sweep(reduced_config(seed=2))
        assert a["violations"] == [] and b["violations"] == []
        assert render_report(a) != render_report(b)
        # The fault-free analytics reference is seed-independent.
        assert a["reference_digests"] == b["reference_digests"]

    def test_report_is_valid_sorted_json(self):
        rendered = render_report(run_sweep(reduced_config()))
        parsed = json.loads(rendered)
        assert list(parsed) == sorted(parsed)
        assert rendered.endswith("\n")

    def test_smoke_config_meets_issue_floor(self):
        smoke = FaultSweepConfig.smoke()
        full = FaultSweepConfig.full()
        assert smoke.reanalyze and full.reanalyze
        assert full.second_kind_points > smoke.second_kind_points
        assert full.wear_points > smoke.wear_points
