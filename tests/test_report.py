"""Tests for run-report formatting."""

import pytest

from repro.analytics.word_count import WordCount
from repro.core.engine import NTadocEngine, RunResult
from repro.metrics.report import (
    comparison_report,
    format_bytes,
    format_ns,
    run_report,
)
from repro.sequitur.compressor import compress_files


class TestFormatters:
    @pytest.mark.parametrize(
        "ns,expected",
        [
            (500, "500 ns"),
            (1_500, "1.5 us"),
            (2_500_000, "2.500 ms"),
            (3_200_000_000, "3.200 s"),
        ],
    )
    def test_format_ns(self, ns, expected):
        assert format_ns(ns) == expected

    @pytest.mark.parametrize(
        "n,expected",
        [
            (512, "512 B"),
            (2048, "2.0 KiB"),
            (3 << 20, "3.00 MiB"),
            (2 << 30, "2.00 GiB"),
        ],
    )
    def test_format_bytes(self, n, expected):
        assert format_bytes(n) == expected

    @pytest.mark.parametrize(
        "ns,expected",
        [
            (-500, "-500 ns"),
            (-1_500, "-1.5 us"),
            (-2_500_000, "-2.500 ms"),
            (-3_200_000_000, "-3.200 s"),
            (0, "0 ns"),
        ],
    )
    def test_format_ns_signed(self, ns, expected):
        # Snapshot diffs render signed deltas; -1500 is -1.5 us, never
        # "-1500 ns" falling through the magnitude thresholds.
        assert format_ns(ns) == expected

    @pytest.mark.parametrize(
        "n,expected",
        [
            (-512, "-512 B"),
            (-2048, "-2.0 KiB"),
            (-(3 << 20), "-3.00 MiB"),
            (-(2 << 30), "-2.00 GiB"),
            (0, "0 B"),
        ],
    )
    def test_format_bytes_signed(self, n, expected):
        assert format_bytes(n) == expected


class TestReports:
    @pytest.fixture(scope="class")
    def run(self):
        corpus = compress_files([("f", "a b c a b c a b c d")])
        return NTadocEngine(corpus).run(WordCount())

    def test_run_report_fields(self, run):
        text = run_report(run)
        assert "task      : word_count" in text
        assert "ntadoc" in text
        assert "initialization" in text
        assert "traversal" in text
        assert "DRAM peak" in text
        assert "cache hit rate" in text

    def test_comparison_report(self, run):
        text = comparison_report([run, run])
        assert "1.00x" in text
        assert "word_count" in text

    def test_comparison_empty_rejected(self):
        with pytest.raises(ValueError):
            comparison_report([])

    def test_report_without_stats(self):
        bare = RunResult(
            task="t", system="s", result=None,
            phase_ns={"initialization": 10.0}, total_ns=10.0,
            dram_peak=1024, pool_peak=2048, pool_device="nvm",
            strategy="topdown",
        )
        text = run_report(bare)
        assert "pool I/O" not in text
        assert "1.0 KiB" in text
