"""Unit and property tests for the Sequitur algorithm."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequitur.sequitur import Sequitur


def build(tokens):
    seq = Sequitur()
    seq.push_all(tokens)
    return seq


class TestBasics:
    def test_empty(self):
        seq = Sequitur()
        assert seq.expand() == []
        assert seq.rule_count == 1  # just the root

    def test_single_token(self):
        assert build([7]).expand() == [7]

    def test_no_repeats_no_rules(self):
        seq = build([1, 2, 3, 4, 5])
        assert seq.rule_count == 1
        assert seq.expand() == [1, 2, 3, 4, 5]

    def test_classic_abcdbc(self):
        """'abcdbc' -> rule for 'bc'."""
        seq = build(list("abcdbc"))
        assert seq.expand() == list("abcdbc")
        assert seq.rule_count == 2
        seq.check_invariants()

    def test_classic_nested(self):
        """'abcdbcabcdbc' compresses hierarchically."""
        seq = build(list("abcdbcabcdbc"))
        assert seq.expand() == list("abcdbcabcdbc")
        assert seq.rule_count >= 3
        seq.check_invariants()

    def test_aaaa(self):
        """Overlapping digrams must not be merged."""
        for n in range(2, 12):
            seq = build(["a"] * n)
            assert seq.expand() == ["a"] * n, f"failed at n={n}"
            seq.check_invariants()

    def test_alternating(self):
        tokens = ["a", "b"] * 10
        seq = build(tokens)
        assert seq.expand() == tokens
        seq.check_invariants()

    def test_triple_repeat_reindexing(self):
        """Regression: deleting one of two overlapping digrams in a run of
        equal symbols must re-register the survivor (the reference
        implementation's triple-handling in join); without it the final
        '1 1' here escapes digram uniqueness."""
        tokens = [2, 1, 1, 1, 2, 1, 0, 1, 1]
        seq = build(tokens)
        assert seq.expand() == tokens
        seq.check_invariants()
        # The repeated '1 1' digram must have been folded into a rule.
        bodies = seq.freeze()
        assert any(body == [1, 1] for body in bodies[1:])

    def test_rule_bodies_have_at_least_two_symbols(self):
        seq = build(list("abcabcabcabc"))
        for body in seq.freeze()[1:]:
            assert len(body) >= 2

    def test_freeze_root_is_index_zero(self):
        seq = build(list("xyxy"))
        bodies = seq.freeze()
        # Root references rule 1 twice.
        assert bodies[0] == [("R", 1), ("R", 1)]
        assert bodies[1] == ["x", "y"]


class TestCompression:
    def test_repetitive_input_compresses(self):
        tokens = list("the cat sat on the mat ") * 50
        seq = build(tokens)
        grammar_size = sum(len(b) for b in seq.freeze())
        assert grammar_size < len(tokens) / 4

    def test_tokens_pushed_counter(self):
        seq = build([1, 2, 3])
        assert seq.tokens_pushed == 3

    def test_unique_separators_stay_in_root(self):
        """Unique tokens can never be folded into a rule."""
        tokens = ["a", "b", "a", "b", "<s1>", "a", "b", "a", "b", "<s2>"]
        seq = build(tokens)
        root = seq.freeze()[0]
        flat_terminals = [s for s in root if not isinstance(s, tuple)]
        assert "<s1>" in flat_terminals
        assert "<s2>" in flat_terminals


class TestInvariantsOnRandomInputs:
    def test_random_small_alphabets(self):
        rng = random.Random(42)
        for trial in range(30):
            alphabet = rng.randint(2, 5)
            length = rng.randint(0, 200)
            tokens = [rng.randrange(alphabet) for _ in range(length)]
            seq = build(tokens)
            assert seq.expand() == tokens, f"trial {trial} mismatch"
            seq.check_invariants()

    def test_random_zipf_like(self):
        rng = random.Random(7)
        population = list(range(50))
        weights = [1 / (r + 1) for r in range(50)]
        for trial in range(10):
            tokens = rng.choices(population, weights=weights, k=500)
            seq = build(tokens)
            assert seq.expand() == tokens
            seq.check_invariants()


@settings(max_examples=120, deadline=None)
@given(tokens=st.lists(st.integers(0, 3), max_size=80))
def test_property_lossless_and_invariant(tokens):
    """For any token stream: expansion is lossless and invariants hold."""
    seq = build(tokens)
    assert seq.expand() == tokens
    seq.check_invariants()


@settings(max_examples=60, deadline=None)
@given(tokens=st.lists(st.integers(0, 1), min_size=2, max_size=120))
def test_property_binary_streams(tokens):
    """Binary alphabets maximize digram churn; the hardest case."""
    seq = build(tokens)
    assert seq.expand() == tokens
    seq.check_invariants()
