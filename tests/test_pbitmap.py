"""Unit and property tests for the persistent bitmap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm.allocator import PoolAllocator
from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory
from repro.pstruct.pbitmap import PBitmap


def make_allocator(size=1 << 20):
    mem = SimulatedMemory(DeviceProfile.nvm(), size)
    return PoolAllocator(mem, base=0, capacity=size)


class TestBasics:
    def test_starts_all_zero(self):
        bitmap = PBitmap.create(make_allocator(), 100)
        assert bitmap.count() == 0
        assert not bitmap.get(0)
        assert not bitmap.get(99)

    def test_set_get(self):
        bitmap = PBitmap.create(make_allocator(), 64)
        bitmap.set(5)
        bitmap.set(63)
        assert bitmap.get(5)
        assert bitmap.get(63)
        assert not bitmap.get(6)
        assert bitmap.count() == 2

    def test_unset(self):
        bitmap = PBitmap.create(make_allocator(), 16)
        bitmap.set(3)
        bitmap.set(3, False)
        assert not bitmap.get(3)
        assert bitmap.count() == 0

    def test_idempotent_set(self):
        bitmap = PBitmap.create(make_allocator(), 16)
        bitmap.set(7)
        bitmap.set(7)
        assert bitmap.count() == 1

    def test_bounds(self):
        bitmap = PBitmap.create(make_allocator(), 10)
        with pytest.raises(IndexError):
            bitmap.get(10)
        with pytest.raises(IndexError):
            bitmap.set(-1)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            PBitmap.create(make_allocator(), 0)

    def test_non_byte_aligned_size(self):
        bitmap = PBitmap.create(make_allocator(), 13)
        for i in range(13):
            bitmap.set(i)
        assert bitmap.count() == 13
        assert bitmap.to_indices() == list(range(13))

    def test_to_indices(self):
        bitmap = PBitmap.create(make_allocator(), 2000)
        for i in (0, 17, 512, 1999):
            bitmap.set(i)
        assert bitmap.to_indices() == [0, 17, 512, 1999]

    def test_clear(self):
        bitmap = PBitmap.create(make_allocator(), 32)
        bitmap.set(1)
        bitmap.clear()
        assert bitmap.count() == 0

    def test_attach(self):
        allocator = make_allocator()
        bitmap = PBitmap.create(allocator, 40)
        bitmap.set(20)
        reopened = PBitmap.attach(allocator, bitmap.header_offset)
        assert reopened.n_bits == 40
        assert reopened.get(20)


class TestOrInto:
    def test_or(self):
        allocator = make_allocator()
        a = PBitmap.create(allocator, 64)
        b = PBitmap.create(allocator, 64)
        a.set(1)
        a.set(40)
        b.set(2)
        a.or_into(b)
        assert b.to_indices() == [1, 2, 40]
        assert a.to_indices() == [1, 40]  # source unchanged

    def test_size_mismatch(self):
        allocator = make_allocator()
        a = PBitmap.create(allocator, 64)
        b = PBitmap.create(allocator, 32)
        with pytest.raises(ValueError):
            a.or_into(b)


@settings(max_examples=40, deadline=None)
@given(
    n_bits=st.integers(1, 300),
    ops=st.lists(st.tuples(st.integers(0, 299), st.booleans()), max_size=60),
)
def test_property_matches_python_set(n_bits, ops):
    bitmap = PBitmap.create(make_allocator(), n_bits)
    model: set[int] = set()
    for index, value in ops:
        index %= n_bits
        bitmap.set(index, value)
        if value:
            model.add(index)
        else:
            model.discard(index)
    assert bitmap.to_indices() == sorted(model)
    assert bitmap.count() == len(model)
