"""Tests for PQueue, FrequencyCounter, HeadTailStore, and layout helpers."""

from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError
from repro.nvm.allocator import PoolAllocator
from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory
from repro.pstruct.headtail import HeadTailStore
from repro.pstruct.layout import next_power_of_two
from repro.pstruct.pcounter import FrequencyCounter
from repro.pstruct.pqueue import PQueue


def make_allocator(size=1 << 20):
    mem = SimulatedMemory(DeviceProfile.nvm(), size)
    return PoolAllocator(mem, base=0, capacity=size)


class TestLayoutHelpers:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, 1), (1, 1), (2, 2), (3, 4), (5, 8), (8, 8), (9, 16), (1000, 1024)],
    )
    def test_next_power_of_two(self, value, expected):
        assert next_power_of_two(value) == expected


class TestPQueue:
    def test_fifo_order(self):
        queue = PQueue.create(make_allocator(), capacity=8)
        for value in (3, 1, 4):
            queue.push(value)
        assert [queue.pop() for _ in range(3)] == [3, 1, 4]

    def test_len_and_empty(self):
        queue = PQueue.create(make_allocator(), capacity=8)
        assert queue.is_empty()
        queue.push(1)
        assert len(queue) == 1
        queue.pop()
        assert queue.is_empty()

    def test_pop_empty_raises(self):
        queue = PQueue.create(make_allocator(), capacity=8)
        with pytest.raises(IndexError):
            queue.pop()

    def test_full_raises(self):
        queue = PQueue.create(make_allocator(), capacity=2)
        queue.push(1)
        queue.push(2)
        with pytest.raises(CapacityError):
            queue.push(3)

    def test_wraparound(self):
        queue = PQueue.create(make_allocator(), capacity=3)
        for round_num in range(10):
            queue.push(round_num)
            assert queue.pop() == round_num

    def test_attach_reopens_state(self):
        alloc = make_allocator()
        queue = PQueue.create(alloc, capacity=8)
        queue.push(42)
        reopened = PQueue.attach(alloc, queue.header_offset)
        assert len(reopened) == 1
        assert reopened.pop() == 42

    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(st.one_of(st.integers(0, 1000), st.none()), max_size=50)
    )
    def test_property_matches_deque(self, ops):
        queue = PQueue.create(make_allocator(), capacity=64)
        model: deque[int] = deque()
        for op in ops:
            if op is None:
                if model:
                    assert queue.pop() == model.popleft()
                else:
                    with pytest.raises(IndexError):
                        queue.pop()
            else:
                queue.push(op)
                model.append(op)
            assert len(queue) == len(model)


class TestFrequencyCounter:
    def test_dense_add_get(self):
        counter = FrequencyCounter.dense(make_allocator(), domain_size=10)
        counter.add(3, 5)
        counter.add(3, 2)
        assert counter.get(3) == 7
        assert counter.get(4) == 0

    def test_dense_get_out_of_domain(self):
        counter = FrequencyCounter.dense(make_allocator(), domain_size=4)
        assert counter.get(100) == 0

    def test_sparse_add_get(self):
        counter = FrequencyCounter.sparse(make_allocator(), expected_distinct=16)
        counter.add(1 << 40, 3)
        assert counter.get(1 << 40) == 3

    def test_items_skip_zeros(self):
        counter = FrequencyCounter.dense(make_allocator(), domain_size=5)
        counter.add(1, 2)
        counter.add(3, 4)
        assert counter.to_dict() == {1: 2, 3: 4}
        assert counter.distinct() == 2

    def test_auto_picks_dense_for_full_domain(self):
        counter = FrequencyCounter.auto(
            make_allocator(), domain_size=100, expected_distinct=80
        )
        assert counter.is_dense

    def test_auto_picks_sparse_for_huge_domain(self):
        counter = FrequencyCounter.auto(
            make_allocator(), domain_size=10**9, expected_distinct=100
        )
        assert not counter.is_dense

    @settings(max_examples=30, deadline=None)
    @given(
        adds=st.lists(
            st.tuples(st.integers(0, 20), st.integers(1, 100)), max_size=50
        ),
        dense=st.booleans(),
    )
    def test_property_matches_counter(self, adds, dense):
        if dense:
            counter = FrequencyCounter.dense(make_allocator(), domain_size=21)
        else:
            counter = FrequencyCounter.sparse(
                make_allocator(), expected_distinct=8, growable=True
            )
        model: dict[int, int] = {}
        for key, delta in adds:
            counter.add(key, delta)
            model[key] = model.get(key, 0) + delta
        assert counter.to_dict() == model


class TestHeadTailStore:
    def test_set_get_roundtrip(self):
        store = HeadTailStore.create(make_allocator(), n_rules=4, k=3)
        store.set(1, head=[10, 11, 12], tail=[20, 21, 22])
        head, tail = store.get(1)
        assert head == [10, 11, 12]
        assert tail == [20, 21, 22]

    def test_short_lists_preserved(self):
        store = HeadTailStore.create(make_allocator(), n_rules=4, k=4)
        store.set(0, head=[5], tail=[9, 10])
        assert store.get_head(0) == [5]
        assert store.get_tail(0) == [9, 10]

    def test_long_lists_truncated(self):
        store = HeadTailStore.create(make_allocator(), n_rules=2, k=2)
        store.set(0, head=[1, 2, 3, 4], tail=[5, 6, 7, 8])
        assert store.get_head(0) == [1, 2]   # first k
        assert store.get_tail(0) == [7, 8]   # last k

    def test_empty_rule(self):
        store = HeadTailStore.create(make_allocator(), n_rules=2, k=2)
        store.set(0, head=[], tail=[])
        assert store.get(0) == ([], [])

    def test_rule_bounds(self):
        store = HeadTailStore.create(make_allocator(), n_rules=2, k=2)
        with pytest.raises(IndexError):
            store.get(2)
        with pytest.raises(IndexError):
            store.set(-1, [], [])

    def test_records_are_contiguous(self):
        store = HeadTailStore.create(make_allocator(), n_rules=10, k=2)
        assert store.record_size == 4 + 8 * 2

    def test_attach(self):
        alloc = make_allocator()
        store = HeadTailStore.create(alloc, n_rules=4, k=3)
        store.set(2, head=[1], tail=[2])
        reopened = HeadTailStore.attach(alloc, store.base_offset, 4, 3)
        assert reopened.get(2) == ([1], [2])
