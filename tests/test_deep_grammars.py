"""Stress tests with pathologically deep (chain-shaped) grammars.

Real Sequitur grammars are roughly logarithmic in depth, but nothing in
the corpus format forbids a linear chain of rules.  Every traversal in
the library must survive a grammar deeper than Python's recursion limit.
"""

import sys

import pytest

from repro.analytics.locate import WordLocate
from repro.core.dag import Dag
from repro.core.grammar import RULE_BASE, SEP_BASE, CompressedCorpus
from repro.core.pruning import PrunedDag
from repro.core.random_access import RandomAccessor
from repro.core.summation import head_tail_lists, summate_all
from repro.core.traversal import propagate_weights_topdown
from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory
from repro.nvm.pool import NvmPool

#: Deeper than CPython's default recursion limit.
DEPTH = sys.getrecursionlimit() + 500


def chain_corpus(depth: int = DEPTH) -> CompressedCorpus:
    """R0 -> R1 w, R1 -> R2 w, ..., R_{d} -> w w.

    Note: this violates Sequitur's rule-utility invariant (each rule used
    once) but is a structurally *valid* corpus -- exactly the kind of
    adversarial input a robust library must tolerate.
    """
    rules = []
    rules.append([RULE_BASE + 1, 0, SEP_BASE])  # root: R1 w0 <sep>
    for i in range(1, depth):
        rules.append([RULE_BASE + i + 1, 0])
    rules.append([0, 0])  # the deepest rule: two words
    return CompressedCorpus(rules=rules, vocab=["w"], file_names=["deep.txt"])


@pytest.fixture(scope="module")
def setup():
    corpus = chain_corpus()
    corpus.validate()
    dag = Dag(corpus)
    pool = NvmPool(SimulatedMemory(DeviceProfile.nvm(), 1 << 22))
    pruned = PrunedDag.build(pool, corpus, dag, bounds=summate_all(dag))
    return corpus, dag, pruned, pool


class TestDeepGrammar:
    def test_expand_rule_iterative(self, setup):
        corpus, _, _, _ = setup
        tokens = corpus.expand_rule(0)
        # (depth-1) chain words + 2 at the bottom + root word + separator.
        assert len(tokens) == DEPTH + 3

    def test_dag_orders(self, setup):
        _, dag, _, _ = setup
        order = dag.topological_order()
        assert len(order) == DEPTH + 1
        assert len(dag.topological_levels()) == DEPTH + 1

    def test_summation_iterative(self, setup):
        _, dag, _, _ = setup
        bounds = summate_all(dag)
        assert bounds[-1] == 1  # deepest rule: 1 distinct word
        assert bounds[0] >= 1

    def test_head_tail_iterative(self, setup):
        _, dag, _, _ = setup
        heads, tails = head_tail_lists(dag, k=2)
        assert heads[1] == [0, 0]

    def test_weight_propagation(self, setup):
        _, _, pruned, pool = setup
        propagate_weights_topdown(pruned, pool.allocator)
        assert pruned.weight(DEPTH) == 1

    def test_random_access_depth_proof(self, setup):
        corpus, dag, pruned, _ = setup
        accessor = RandomAccessor(pruned, dag.expansion_lengths())
        length = accessor.file_length(0)
        assert length == DEPTH + 2
        assert accessor.word_at(0, 0) == 0
        assert accessor.word_at(0, length - 1) == 0

    def test_word_locate_depth_proof(self, setup):
        corpus, dag, _, _ = setup
        from repro.core.engine import NTadocEngine

        engine = NTadocEngine(corpus)
        run = engine.run(WordLocate(0, dag.expansion_lengths()))
        assert run.result[0] == list(range(DEPTH + 2))
