"""Differential equivalence suite for the bulk-kernel subsystem.

The kernels (``repro.kernels``) promise the charge-from-plan /
execute-vectorized contract: simulated time, per-device stats, wear,
and the device buffer image are **bit-identical** (``==``, no
tolerances) whether a workload runs through the scalar reference paths
(``kernels="off"``) or the bulk kernels (``"auto"``/``"python"``).
This suite holds that promise three ways:

* property-based op programs over the persistent containers, replayed
  against one memory per mode and compared snapshot-for-snapshot,
* an engine-level fused trio run compared across every mode,
* the crash-sweep harness run with kernels on and off, whose reports
  (recovery costs included) must render identically.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analytics.inverted_index import InvertedIndex
from repro.analytics.term_vector import TermVector
from repro.analytics.word_count import WordCount
from repro.core.engine import EngineConfig, NTadocEngine
from repro.errors import CapacityError
from repro.harness.crashsweep import SweepConfig, render_report, run_sweep
from repro.kernels import make
from repro.nvm.allocator import PoolAllocator
from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory
from repro.pstruct.phashtable import PHashTable
from repro.pstruct.pqueue import PQueue
from repro.pstruct.pvector import PVector
from repro.sequitur.compressor import compress_files

#: Kernel-backed modes checked against the scalar "off" reference.
MODES = ("auto", "python")


def snapshot(mem: SimulatedMemory) -> tuple:
    """Every observable the contract pins, as one comparable tuple."""
    s = mem.stats
    return (
        mem.clock.ns,
        bytes(mem._buf),
        mem.wear,
        mem._last_media_line,
        s.device_ns,
        s.cache_hits,
        s.cache_misses,
        s.writebacks,
        s.lines_read,
        s.lines_written,
        s.read_ops,
        s.write_ops,
        s.bytes_read,
        s.bytes_written,
    )


# -- hash-table op programs ------------------------------------------------

_KEYS = st.integers(min_value=0, max_value=47)
_VALS = st.integers(min_value=-40, max_value=2000)
_PAIRS = st.lists(st.tuples(_KEYS, _VALS), max_size=40)

_TABLE_OP = st.one_of(
    st.tuples(st.just("add_many"), _PAIRS),
    st.tuples(st.just("insert_many"), _PAIRS),
    st.tuples(st.just("get_many"), st.lists(_KEYS, max_size=30)),
    st.tuples(st.just("merge"), st.integers(min_value=1, max_value=5)),
    st.tuples(st.just("accumulate"), st.just(None)),
    st.tuples(st.just("items"), st.just(None)),
    st.tuples(st.just("delete"), _KEYS),
)


def _run_table_program(mode: str, cache_bytes: int, ops) -> tuple:
    mem = SimulatedMemory(
        DeviceProfile.nvm(), 1 << 20, cache_bytes=cache_bytes, kernels=mode
    )
    alloc = PoolAllocator(mem, 0, 1 << 19)
    source = PHashTable.create(alloc, 64)
    target = PHashTable.create(alloc, 48)
    source.add_many((k, k % 7 + 1) for k in range(40))
    observed: list = []
    for name, arg in ops:
        try:
            if name == "add_many":
                target.add_many(arg)
            elif name == "insert_many":
                target.insert_many(arg)
            elif name == "get_many":
                observed.append(target.get_many(arg, default=-1))
            elif name == "merge":
                target.merge_from(source, scale=arg)
            elif name == "accumulate":
                counts: dict = {}
                target.accumulate_into(counts, mem.clock)
                observed.append(counts)
            elif name == "items":
                observed.append(list(target.items()))
            elif name == "delete":
                observed.append(target.delete(arg))
        except CapacityError as exc:
            # The kernel raises mid-batch with the scalar path's partial
            # state; message and every later observation must agree too.
            observed.append(("capacity", str(exc)))
    observed.append(target.to_dict())
    observed.append((len(target), target._tombstones))
    return snapshot(mem), observed


class TestHashTableDifferential:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        ops=st.lists(_TABLE_OP, max_size=12),
        cache_bytes=st.sampled_from([1 << 10, 1 << 13, 1 << 20]),
    )
    def test_programs_replay_identically(self, ops, cache_bytes):
        reference = _run_table_program("off", cache_bytes, ops)
        for mode in MODES:
            assert _run_table_program(mode, cache_bytes, ops) == reference

    def test_capacity_error_partial_state_matches(self):
        pairs = [(k, 1) for k in range(200)]

        def run(mode):
            mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 20, kernels=mode)
            alloc = PoolAllocator(mem, 0, 1 << 19)
            table = PHashTable.create(alloc, 8)
            with pytest.raises(CapacityError) as err:
                table.add_many(pairs)
            return snapshot(mem), str(err.value), table.to_dict(), len(table)

        reference = run("off")
        for mode in MODES:
            assert run(mode) == reference


# -- vector / queue bulk ops ----------------------------------------------


def _run_container_program(mode: str, values, elem_size: int) -> tuple:
    mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 20, kernels=mode)
    alloc = PoolAllocator(mem, 0, 1 << 19)
    vec = PVector.create(alloc, capacity=512, elem_size=elem_size)
    vec.extend(values)
    queue = PQueue.create(alloc, capacity=256)
    queue.push_many([v % 1000 for v in values[:200]])
    drained = queue.pop_many(150)
    observed = (
        list(vec.read_range(0, len(vec))),
        vec.to_list(),
        list(vec),
        drained,
        queue.pop_many(100),
    )
    return snapshot(mem), observed


class TestContainerDifferential:
    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=2**31 - 1), max_size=120
        ),
        elem_size=st.sampled_from([4, 8]),
    )
    def test_vector_and_queue_replay_identically(self, values, elem_size):
        reference = _run_container_program("off", values, elem_size)
        for mode in MODES:
            assert _run_container_program(mode, values, elem_size) == reference


# -- engine level ----------------------------------------------------------


@pytest.fixture(scope="module")
def corpus():
    phrase = "omega theta iota kappa " * 9
    files = [(f"doc{i}", phrase + f"word{i % 3} tail{i}") for i in range(8)]
    return compress_files(files)


class TestEngineDifferential:
    def test_fused_trio_identical_across_modes(self, corpus):
        tasks = lambda: [WordCount(), InvertedIndex(), TermVector()]  # noqa: E731
        reference = None
        for mode in ("off", *MODES):
            engine = NTadocEngine(corpus, EngineConfig(kernels=mode))
            run = engine.run_many(tasks())
            key = (run.total_ns, [str(r.result) for r in run.results])
            if reference is None:
                reference = key
            else:
                assert key == reference, mode

    def test_solo_run_identical_across_modes(self, corpus):
        reference = None
        for mode in ("off", *MODES):
            run = NTadocEngine(corpus, EngineConfig(kernels=mode)).run(WordCount())
            key = (run.total_ns, run.result)
            if reference is None:
                reference = key
            else:
                assert key == reference, mode


# -- crash sweep with kernels ---------------------------------------------


def _sweep_config(kernels: str) -> SweepConfig:
    return SweepConfig(
        engine_write_points=8,
        engine_line_points=4,
        torn_per_flush=2,
        tx_write_points=6,
        tx_torn_points=4,
        integrity_rules=1,
        kernels=kernels,
    )


class TestCrashSweepWithKernels:
    def test_sweep_report_identical_with_and_without_kernels(self):
        with_kernels = run_sweep(_sweep_config("auto"))
        without = run_sweep(_sweep_config("off"))
        assert with_kernels["violations"] == []
        # The config echo differs by construction, and the black-box
        # sample embeds the kernel_backend journal event, which names
        # the backend by design; its counters must still agree.
        # Everything measured (points, recoveries, costs, digests)
        # must match bit-for-bit.
        with_kernels["config"].pop("kernels")
        without["config"].pop("kernels")
        bb_with = with_kernels.pop("blackbox")
        bb_without = without.pop("blackbox")
        assert {k: v for k, v in bb_with.items() if k != "sample"} == {
            k: v for k, v in bb_without.items() if k != "sample"
        }
        assert render_report(with_kernels) == render_report(without)


# -- backend selection -----------------------------------------------------


class TestBackendSelection:
    def test_no_numpy_env_forces_python_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 16)
        kern = make(mem, "auto")
        assert kern is not None and kern.np is None

    def test_numpy_mode_raises_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 16)
        with pytest.raises(RuntimeError):
            make(mem, "numpy")

    def test_off_mode_has_no_kernels(self):
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 16, kernels="off")
        assert mem.kernels is None
        assert not mem.kernel_ready
