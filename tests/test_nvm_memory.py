"""Unit tests for the simulated memory, cache model, and crash semantics."""

import pytest

from repro.errors import InvalidAccessError
from repro.nvm.cache import LineCache
from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedClock, SimulatedMemory


def make_nvm(size=1 << 16, cache_bytes=1 << 12):
    return SimulatedMemory(DeviceProfile.nvm(), size, cache_bytes=cache_bytes)


class TestClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().ns == 0.0

    def test_advance(self):
        clock = SimulatedClock()
        clock.advance(10.5)
        clock.advance(4.5)
        assert clock.ns == 15.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1)

    def test_cpu_charges_per_op(self):
        clock = SimulatedClock()
        clock.cpu(100)
        assert clock.ns == pytest.approx(100 * SimulatedClock.CPU_OP_NS)


class TestLineCache:
    def test_miss_then_hit(self):
        cache = LineCache(capacity_bytes=1024, line_size=64)
        hit, _ = cache.access(5, dirty=False)
        assert not hit
        hit, _ = cache.access(5, dirty=False)
        assert hit

    def test_lru_eviction_order(self):
        cache = LineCache(capacity_bytes=128, line_size=64)  # 2 lines
        cache.access(1, False)
        cache.access(2, False)
        cache.access(1, False)  # refresh line 1
        cache.access(3, False)  # evicts line 2 (LRU)
        assert cache.contains(1)
        assert not cache.contains(2)
        assert cache.contains(3)

    def test_dirty_eviction_reported(self):
        cache = LineCache(capacity_bytes=64, line_size=64)  # 1 line
        cache.access(1, dirty=True)
        _, evicted = cache.access(2, dirty=False)
        assert evicted == 1

    def test_clean_eviction_not_reported(self):
        cache = LineCache(capacity_bytes=64, line_size=64)
        cache.access(1, dirty=False)
        _, evicted = cache.access(2, dirty=False)
        assert evicted is None

    def test_dirty_flag_sticks(self):
        cache = LineCache(capacity_bytes=128, line_size=64)
        cache.access(1, dirty=True)
        cache.access(1, dirty=False)  # clean re-access must not launder
        assert cache.dirty_lines() == [1]

    def test_invalidate_all(self):
        cache = LineCache(capacity_bytes=1024, line_size=64)
        cache.access(1, True)
        cache.invalidate_all()
        assert len(cache) == 0


class TestReadWrite:
    def test_roundtrip(self):
        mem = make_nvm()
        mem.write(100, b"abcdef")
        assert mem.read(100, 6) == b"abcdef"

    def test_zero_initialized(self):
        mem = make_nvm()
        assert mem.read(0, 16) == bytes(16)

    def test_out_of_bounds_read(self):
        mem = make_nvm(size=1024)
        with pytest.raises(InvalidAccessError):
            mem.read(1020, 8)

    def test_out_of_bounds_write(self):
        mem = make_nvm(size=1024)
        with pytest.raises(InvalidAccessError):
            mem.write(1024, b"x")

    def test_negative_offset(self):
        mem = make_nvm()
        with pytest.raises(InvalidAccessError):
            mem.read(-1, 4)

    def test_fill(self):
        mem = make_nvm()
        mem.fill(10, 5, 0xAB)
        assert mem.read(10, 5) == b"\xab" * 5

    def test_stats_counters(self):
        mem = make_nvm()
        mem.write(0, b"x" * 100)
        mem.read(0, 100)
        assert mem.stats.write_ops == 1
        assert mem.stats.read_ops == 1
        assert mem.stats.bytes_written == 100
        assert mem.stats.bytes_read == 100


class TestCostModel:
    def test_first_touch_misses_second_hits(self):
        mem = make_nvm()
        mem.read(0, 8)
        misses_after_first = mem.stats.cache_misses
        mem.read(8, 8)  # same 256-byte line
        assert mem.stats.cache_misses == misses_after_first
        assert mem.stats.cache_hits >= 1

    def test_miss_costs_more_than_hit(self):
        mem = make_nvm()
        mem.read(0, 8)
        miss_cost = mem.clock.ns
        before = mem.clock.ns
        mem.read(16, 8)
        hit_cost = mem.clock.ns - before
        assert miss_cost > hit_cost

    def test_sequential_discount_applies(self):
        clock_seq = SimulatedClock()
        seq = SimulatedMemory(DeviceProfile.nvm(), 1 << 16, clock_seq,
                              cache_bytes=256)  # 1-line cache: every line misses
        seq.read(0, 4096)  # 16 consecutive lines

        clock_rand = SimulatedClock()
        rand = SimulatedMemory(DeviceProfile.nvm(), 1 << 16, clock_rand,
                               cache_bytes=256)
        for i in range(16):  # same line count, strided (never sequential)
            rand.read(((i * 7) % 16) * 512, 1)
        assert clock_seq.ns < clock_rand.ns

    def test_access_amplification_scattered_vs_packed(self):
        """Core paper effect: scattered 8-byte objects cost far more than
        the same objects packed on consecutive 256-byte lines."""
        packed = make_nvm(cache_bytes=1 << 10)
        for i in range(64):
            packed.read(i * 8, 8)  # 64 objects on 2 lines
        scattered = make_nvm(cache_bytes=1 << 10)
        for i in range(64):
            scattered.read((i * 997) % ((1 << 16) - 8), 8)  # one line each
        assert scattered.clock.ns > 3 * packed.clock.ns

    def test_shared_clock_accumulates_across_memories(self):
        clock = SimulatedClock()
        a = SimulatedMemory(DeviceProfile.dram(), 1024, clock)
        b = SimulatedMemory(DeviceProfile.nvm(), 1024, clock)
        a.read(0, 8)
        after_a = clock.ns
        b.read(0, 8)
        assert clock.ns > after_a

    def test_writeback_charged_on_dirty_eviction(self):
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 16, cache_bytes=256)
        mem.write(0, b"x")      # dirty line 0
        mem.read(512, 1)        # evicts dirty line 0 -> write-back
        assert mem.stats.writebacks == 1


class TestFlushAndCrash:
    def test_flush_counts_dirty_lines(self):
        mem = make_nvm()
        mem.write(0, b"a" * 600)  # 3 lines of 256 B
        assert mem.flush() == 3
        assert mem.dirty_line_count == 0

    def test_double_flush_is_cheap(self):
        mem = make_nvm()
        mem.write(0, b"a")
        mem.flush()
        assert mem.flush() == 0

    def test_crash_without_flush_loses_data(self):
        mem = make_nvm()
        mem.write(0, b"precious")
        mem.crash()
        assert mem.read(0, 8) == bytes(8)

    def test_crash_after_flush_keeps_data(self):
        mem = make_nvm()
        mem.write(0, b"precious")
        mem.flush()
        mem.write(8, b"volatile")
        mem.crash()
        assert mem.read(0, 8) == b"precious"
        assert mem.read(8, 8) == bytes(8)

    def test_volatile_device_loses_everything_on_crash(self):
        mem = SimulatedMemory(DeviceProfile.dram(), 1024)
        mem.write(0, b"gone")
        mem.flush()
        mem.crash()
        assert mem.read(0, 4) == bytes(4)

    def test_flush_cost_proportional_to_dirty_lines(self):
        mem = make_nvm()
        mem.write(0, b"x" * 256 * 4)
        before = mem.clock.ns
        mem.flush()
        cost4 = mem.clock.ns - before
        mem.write(0, b"y" * 256)
        before = mem.clock.ns
        mem.flush()
        cost1 = mem.clock.ns - before
        assert cost4 == pytest.approx(4 * cost1)


class TestBackingFile:
    def test_persist_and_reload(self, tmp_path):
        path = tmp_path / "pool.img"
        mem = make_nvm(size=4096)
        mem.attach_file(path)
        mem.write(0, b"durable")
        mem.flush()

        fresh = make_nvm(size=4096)
        fresh.attach_file(path, load=True)
        assert fresh.read(0, 7) == b"durable"

    def test_reload_survives_crash_of_fresh_memory(self, tmp_path):
        path = tmp_path / "pool.img"
        mem = make_nvm(size=4096)
        mem.attach_file(path)
        mem.write(0, b"durable")
        mem.flush()

        fresh = make_nvm(size=4096)
        fresh.attach_file(path, load=True)
        fresh.write(0, b"scratch")
        fresh.crash()
        assert fresh.read(0, 7) == b"durable"

    def test_oversized_image_rejected(self, tmp_path):
        path = tmp_path / "pool.img"
        path.write_bytes(b"z" * 8192)
        mem = make_nvm(size=4096)
        with pytest.raises(InvalidAccessError):
            mem.attach_file(path, load=True)

    def test_smaller_image_loads_prefix_and_zero_fills_rest(self, tmp_path):
        # Reopening a pool on a larger device: the image covers a prefix,
        # the tail stays zeroed, and the whole state counts as flushed.
        path = tmp_path / "pool.img"
        path.write_bytes(b"head" + bytes(252))  # 256 B image, 4 KiB device
        mem = make_nvm(size=4096)
        mem.attach_file(path, load=True)
        assert mem.read(0, 4) == b"head"
        assert mem.read(256, 16) == bytes(16)
        assert mem.read(4080, 16) == bytes(16)
        mem.write(0, b"scratch")
        mem.crash()  # loaded image must survive as the recovery point
        assert mem.read(0, 4) == b"head"

    def test_missing_image_load_is_noop(self, tmp_path):
        mem = make_nvm(size=4096)
        mem.attach_file(tmp_path / "absent.img", load=True)
        assert mem.read(0, 8) == bytes(8)


class TestPeekPoke:
    def test_peek_free_of_charge(self):
        mem = make_nvm()
        mem.write(0, b"data")
        cost = mem.clock.ns
        mem.peek(0, 4)
        assert mem.clock.ns == cost

    def test_poke_roundtrip(self):
        mem = make_nvm()
        mem.poke(0, b"raw")
        assert mem.peek(0, 3) == b"raw"
