"""Property tests for the memory model and allocator invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm.allocator import PoolAllocator
from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory

_SIZE = 1 << 14


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["read", "write", "flush"]),
            st.integers(0, _SIZE - 1),
            st.integers(1, 128),
            st.binary(min_size=1, max_size=128),
        ),
        max_size=50,
    ),
    device=st.sampled_from(["dram", "nvm", "reram", "pcm", "ssd", "hdd"]),
)
def test_memory_contents_match_model(ops, device):
    """Whatever the op mix or device, contents track a plain bytearray
    and the clock never runs backwards."""
    mem = SimulatedMemory(DeviceProfile.by_name(device), _SIZE, cache_bytes=1 << 10)
    model = bytearray(_SIZE)
    last_ns = 0.0
    for op, offset, size, payload in ops:
        size = min(size, _SIZE - offset)
        if size <= 0:
            continue
        if op == "read":
            assert mem.read(offset, size) == bytes(model[offset : offset + size])
        elif op == "write":
            data = (payload * ((size // len(payload)) + 1))[:size]
            mem.write(offset, data)
            model[offset : offset + size] = data
        else:
            mem.flush()
        assert mem.clock.ns >= last_ns, "clock ran backwards"
        last_ns = mem.clock.ns
    # Full sweep at the end.
    assert mem.peek(0, _SIZE) == bytes(model)


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]), st.integers(8, 512)),
        max_size=60,
    ),
    scatter=st.booleans(),
)
def test_allocator_never_overlaps_live_blocks(ops, scatter):
    mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 20)
    allocator = PoolAllocator(mem, base=0, capacity=1 << 20, scatter=scatter)
    live: list[tuple[int, int]] = []
    for op, size in ops:
        if op == "alloc":
            offset = allocator.alloc(size)
            for other_offset, other_size in live:
                assert (
                    offset + size <= other_offset
                    or offset >= other_offset + other_size
                ), "allocator returned overlapping live blocks"
            live.append((offset, size))
        elif live:
            offset, size = live.pop()
            allocator.free(offset, size)
    assert allocator.allocated_bytes == sum(s for _, s in live)


@settings(max_examples=40, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, _SIZE - 64), st.binary(min_size=1, max_size=64)),
        max_size=30,
    ),
    crash_after_flush=st.booleans(),
)
def test_crash_restores_exactly_the_flushed_image(writes, crash_after_flush):
    mem = SimulatedMemory(DeviceProfile.nvm(), _SIZE)
    flushed = bytearray(_SIZE)
    for i, (offset, data) in enumerate(writes):
        mem.write(offset, data)
        if i % 3 == 2:
            mem.flush()
            flushed = bytearray(mem.peek(0, _SIZE))
    if crash_after_flush:
        mem.flush()
        flushed = bytearray(mem.peek(0, _SIZE))
    mem.crash()
    assert mem.peek(0, _SIZE) == bytes(flushed)
