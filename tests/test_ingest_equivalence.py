"""Differential contract of the segmented ingest engine.

For every analytics task and every tested configuration::

    incremental(corpus + appends + deletes) == recompress(final corpus)

canonical-JSON, through seals, compactions, crash-reopen cycles (including
crashes planted *inside* a compaction), and Hypothesis-generated random
interleavings of the whole op alphabet.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import EngineConfig
from repro.errors import CrashPoint, ReproError
from repro.ingest import SegmentedEngine, canonical_json, reference_rendered
from repro.ingest.merge import MERGEABLE_TASKS
from repro.nvm.faults import FaultPlan

CONFIGS = [
    pytest.param(lambda: EngineConfig(), id="default"),
    pytest.param(
        lambda: EngineConfig(media_protect=True, track_wear=True),
        id="media-protect",
    ),
    pytest.param(lambda: EngineConfig(traversal="bottomup"), id="bottomup"),
]

PHRASE = "compressed text analytics without decompression "


def _doc(i: int) -> tuple[str, str]:
    return f"doc{i:02d}.txt", PHRASE * 2 + f"unique u{i} shared s{i % 3}"


def _assert_differential(eng, tasks=MERGEABLE_TASKS):
    res = eng.run_tasks(list(tasks))
    ref = eng.corpus.recompressed()
    for task in tasks:
        assert canonical_json(res.rendered[task]) == canonical_json(
            reference_rendered(task, ref, eng.config)
        ), task
    return res


def _build(config, n_docs=9, threshold=30):
    eng = SegmentedEngine(config, seal_threshold_tokens=threshold)
    for i in range(n_docs):
        eng.append(*_doc(i))
    return eng


@pytest.mark.parametrize("make_config", CONFIGS)
class TestDifferential:
    def test_append_only(self, make_config):
        eng = _build(make_config())
        res = _assert_differential(eng)
        assert res.n_segments == len(eng.corpus.segments)

    def test_deletes_filter_at_merge(self, make_config):
        eng = _build(make_config())
        eng.seal()
        eng.delete("doc01.txt")  # sealed: tombstone
        eng.append("extra.txt", PHRASE + "buffered b1 b2")
        eng.delete("extra.txt")  # buffered: removed outright
        eng.append("kept.txt", PHRASE + "kept k1")
        _assert_differential(eng)

    def test_compaction_is_invisible_to_queries(self, make_config):
        eng = _build(make_config())
        eng.seal()
        eng.delete("doc03.txt")
        before = _assert_differential(eng)
        n_before = len(eng.corpus.segments)
        assert n_before > 1
        eng.compact()
        assert len(eng.corpus.segments) == 1
        after = _assert_differential(eng)
        for task in MERGEABLE_TASKS:
            assert canonical_json(before.rendered[task]) == canonical_json(
                after.rendered[task]
            )

    def test_crash_reopen_then_requery(self, make_config):
        eng = _build(make_config())
        eng.seal()
        eng.delete("doc02.txt")
        _assert_differential(eng)  # leave query scratch on the device
        mem, arts, cfg = eng.memory, dict(eng.artifacts), eng.config
        mem.crash()
        eng2 = SegmentedEngine.reopen(mem, arts, cfg)
        assert eng2.corpus.live_doc_names() == eng.corpus.live_doc_names()
        _assert_differential(eng2)

    def test_reopen_drops_unsealed_buffer(self, make_config):
        eng = _build(make_config(), n_docs=6)
        eng.seal()
        eng.append("volatile.txt", "never sealed so never durable")
        mem, arts, cfg = eng.memory, dict(eng.artifacts), eng.config
        mem.crash()
        eng2 = SegmentedEngine.reopen(mem, arts, cfg)
        assert "volatile.txt" not in eng2.corpus.live_doc_names()
        _assert_differential(eng2)

    def test_life_continues_after_reopen(self, make_config):
        eng = _build(make_config(), n_docs=6)
        eng.seal()
        mem, arts, cfg = eng.memory, dict(eng.artifacts), eng.config
        mem.crash()
        eng2 = SegmentedEngine.reopen(mem, arts, cfg)
        eng2.delete("doc04.txt")
        eng2.append("late.txt", PHRASE + "late l1 l2")
        eng2.seal()
        eng2.compact()
        _assert_differential(eng2)


@pytest.mark.parametrize(
    "make_config",
    [CONFIGS[0], CONFIGS[1]],  # plain + media-protect cover the reopen paths
)
def test_crash_mid_compaction_resumes(make_config):
    """Crash at every compaction flush: recovery lands on the pre- or
    post-compaction segment set, and the differential contract still
    holds on the reopened engine."""

    def workload():
        eng = _build(make_config(), n_docs=9, threshold=30)
        eng.seal()
        eng.delete("doc01.txt")
        eng.delete("doc07.txt")
        return eng

    eng = workload()
    pre = set(eng.pool.segment_names())
    counter = FaultPlan()
    eng.memory.arm_faults(counter)
    eng.compact()
    eng.memory.disarm_faults()
    post = set(eng.pool.segment_names())
    n_flushes = counter.events["flush"]
    assert n_flushes >= 2  # install flush + commit flush at minimum

    for ordinal in range(1, n_flushes + 1):
        eng = workload()
        eng.memory.arm_faults(FaultPlan("flush", ordinal))
        with pytest.raises(CrashPoint):
            eng.compact()
        mem = eng.memory
        mem.disarm_faults()
        mem.crash()
        reopened = SegmentedEngine.reopen(
            mem, dict(eng.artifacts), eng.config
        )
        names = set(reopened.pool.segment_names())
        assert names in (pre, post), f"flush {ordinal}: mixed state {names}"
        _assert_differential(reopened)


def test_query_on_empty_corpus_raises():
    eng = SegmentedEngine(EngineConfig())
    with pytest.raises(ReproError):
        eng.run_tasks(["word_count"])
    eng.append("a.txt", "one two")
    eng.delete("a.txt")
    with pytest.raises(ReproError):
        eng.run_tasks(["word_count"])


def test_unknown_task_rejected():
    eng = SegmentedEngine(EngineConfig())
    eng.append("a.txt", "one two")
    with pytest.raises(ReproError):
        eng.run_tasks(["no_such_task"])


# ---------------------------------------------------------------------------
# Random interleavings
# ---------------------------------------------------------------------------

_WORDS = ["nvm", "text", "grammar", "rule", "seal", "merge", "scan", "pool"]


def _random_text(rng: random.Random) -> str:
    return " ".join(rng.choices(_WORDS, k=rng.randint(3, 12)))


def _apply_ops(eng, ops, rng, *, allow_crash):
    """Replay generated op codes; returns the (possibly reopened) engine."""
    counter = 0
    for code in ops:
        if code == "append":
            eng.append(f"gen{counter:04d}", _random_text(rng))
            counter += 1
        elif code == "delete":
            live = eng.corpus.live_doc_names()
            if live:
                eng.delete(live[rng.randrange(len(live))])
        elif code == "seal":
            eng.seal()
        elif code == "compact":
            if eng.corpus.segments:
                eng.compact()
        elif code == "query":
            if eng.corpus.n_live:
                _assert_differential(eng, tasks=("word_count", "sort"))
        elif code == "crash":
            if allow_crash:
                mem, arts, cfg = eng.memory, dict(eng.artifacts), eng.config
                mem.crash()
                eng = SegmentedEngine.reopen(
                    mem, arts, cfg, seal_threshold_tokens=20
                )
    return eng


_OP_CODES = st.sampled_from(
    # appends dominate so corpora actually grow
    ["append"] * 4 + ["delete", "seal", "compact", "query"]
)


@settings(max_examples=15, deadline=None)
@given(
    ops=st.lists(_OP_CODES, min_size=4, max_size=18),
    seed=st.integers(0, 2**16),
)
def test_random_interleavings_match_recompress(ops, seed):
    eng = SegmentedEngine(EngineConfig(), seal_threshold_tokens=20)
    eng = _apply_ops(eng, ops, random.Random(seed), allow_crash=False)
    if eng.corpus.n_live:
        _assert_differential(eng)


@settings(max_examples=10, deadline=None)
@given(
    ops=st.lists(
        st.sampled_from(
            ["append"] * 4 + ["delete", "seal", "compact", "query", "crash"]
        ),
        min_size=4,
        max_size=16,
    ),
    seed=st.integers(0, 2**16),
)
def test_random_interleavings_with_crashes(ops, seed):
    eng = SegmentedEngine(EngineConfig(), seal_threshold_tokens=20)
    eng = _apply_ops(eng, ops, random.Random(seed), allow_crash=True)
    if eng.corpus.n_live:
        _assert_differential(eng)
