"""Tests for grammar diagnostics and the real-corpus loader."""

import pytest

from repro.core.stats import grammar_stats, rule_length_histogram
from repro.datasets.loader import iter_text_files, load_directory
from repro.errors import ReproError
from repro.sequitur.compressor import compress_files


@pytest.fixture(scope="module")
def corpus():
    return compress_files(
        [
            ("f1", "x y z x y z x y z q r"),
            ("f2", "q r x y z q r"),
        ]
    )


class TestGrammarStats:
    def test_basic_fields(self, corpus):
        stats = grammar_stats(corpus)
        assert stats.n_rules == corpus.n_rules
        assert stats.n_files == 2
        assert stats.vocabulary == 5
        assert stats.total_tokens == 18
        assert stats.grammar_length == corpus.grammar_length()
        assert 0 < stats.compression_ratio < 2

    def test_dag_depth_positive(self, corpus):
        assert grammar_stats(corpus).dag_depth >= 1

    def test_root_length(self, corpus):
        assert grammar_stats(corpus).root_length == len(corpus.rules[0])

    def test_rule_reuse_respects_utility(self, corpus):
        """Sequitur's rule utility: every non-root rule is used >= 2x."""
        stats = grammar_stats(corpus)
        if corpus.n_rules > 1:
            assert stats.mean_rule_reuse >= 2.0

    def test_describe_renders(self, corpus):
        text = grammar_stats(corpus).describe()
        assert "DAG depth" in text
        assert "rule reuse" in text

    def test_histogram_counts_all_rules(self, corpus):
        histogram = rule_length_histogram(corpus)
        assert sum(histogram.values()) == corpus.n_rules

    def test_histogram_buckets_ordered(self, corpus):
        histogram = rule_length_histogram(corpus, buckets=(2, 10))
        assert list(histogram) == ["<=2", "<=10", ">10"]


class TestLoader:
    @pytest.fixture
    def tree(self, tmp_path):
        (tmp_path / "a.txt").write_text("alpha beta alpha beta")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.txt").write_text("beta gamma beta gamma")
        (tmp_path / "ignore.dat").write_text("not text")
        (tmp_path / "binary.txt").write_bytes(b"\xff\xfe\x00junk")
        return tmp_path

    def test_iterates_sorted_matching_files(self, tree):
        files = list(iter_text_files(tree))
        names = [name for name, _ in files]
        assert names == ["a.txt", "sub/b.txt"]

    def test_skips_undecodable(self, tree):
        names = [name for name, _ in iter_text_files(tree)]
        assert "binary.txt" not in names

    def test_truncation_at_whitespace(self, tree):
        (tree / "big.txt").write_text("word " * 100)
        files = dict(iter_text_files(tree, max_bytes_per_file=23))
        assert len(files["big.txt"]) <= 23
        assert not files["big.txt"].endswith("wor")  # no torn words

    def test_load_directory(self, tree):
        corpus = load_directory(tree)
        assert corpus.n_files == 2
        assert corpus.expand_text()[0] == "alpha beta alpha beta"

    def test_max_files(self, tree):
        corpus = load_directory(tree, max_files=1)
        assert corpus.n_files == 1

    def test_no_match_raises(self, tmp_path):
        with pytest.raises(ReproError):
            load_directory(tmp_path, pattern="*.nope")

    def test_char_mode_passthrough(self, tree):
        corpus = load_directory(tree, token_mode="chars")
        assert corpus.token_mode == "chars"
