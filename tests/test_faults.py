"""Unit tests for the fault-injection layer (`repro.nvm.faults`)."""

import pytest

from repro.errors import CrashPoint
from repro.nvm.device import DeviceProfile
from repro.nvm.faults import FaultPlan, ReadCorruption, TornFlush
from repro.nvm.memory import SimulatedMemory


@pytest.fixture
def mem():
    return SimulatedMemory(DeviceProfile.nvm(), 1 << 16)


class TestCountingPlan:
    def test_counts_without_crashing(self, mem):
        plan = FaultPlan()
        mem.arm_faults(plan)
        mem.write(0, b"x" * 512)
        mem.write(1024, b"y" * 16)
        mem.flush()
        mem.write(2048, b"z" * 8)
        mem.flush()
        assert plan.events["write"] == 3
        assert plan.events["flush"] == 2
        assert not plan.fired

    def test_flush_profiles_record_windows(self, mem):
        line = mem.profile.line_size
        plan = FaultPlan()
        mem.arm_faults(plan)
        mem.write(0, b"x" * line)          # dirties line 0
        mem.write(line * 4, b"y" * line)   # dirties line 4
        mem.flush()
        mem.write(0, b"z")
        mem.flush()
        assert [p["flush"] for p in plan.flush_profiles] == [1, 2]
        assert plan.flush_profiles[0]["writes_before"] == 2
        assert plan.flush_profiles[0]["dirty_lines"] == 2
        assert plan.flush_profiles[1]["writes_before"] == 3
        assert plan.flush_profiles[1]["dirty_lines"] == 1

    def test_serial_totally_orders_events(self, mem):
        plan = FaultPlan()
        mem.arm_faults(plan)
        mem.write(0, b"x" * 512)  # two dirty lines
        mem.flush()               # 1 flush event + 2 line persists
        # 1 write + 1 flush + 2 line_persist
        assert plan.serial == 4
        assert plan.events["line_persist"] == 2


class TestCrashAtWrite:
    def test_kth_write_never_lands(self, mem):
        mem.write(0, b"A" * 8)
        mem.flush()
        mem.arm_faults(FaultPlan("write", 2))
        mem.write(0, b"B" * 8)  # write #1 lands (volatile)
        with pytest.raises(CrashPoint):
            mem.write(8, b"C" * 8)  # write #2 fires before the store
        mem.disarm_faults()
        mem.crash()
        # Neither unflushed write survives; the flushed image does.
        assert mem.read(0, 8) == b"A" * 8
        assert mem.read(8, 8) == bytes(8)

    def test_validation_rejects_bad_plans(self):
        with pytest.raises(ValueError):
            FaultPlan("teleport", 1)
        with pytest.raises(ValueError):
            FaultPlan("write", 0)


class TestCrashAtFlush:
    def test_boundary_crash_persists_nothing_of_the_flush(self, mem):
        mem.write(0, b"A" * 8)
        mem.flush()
        mem.write(0, b"B" * 8)
        mem.arm_faults(FaultPlan("flush", 1))
        with pytest.raises(CrashPoint):
            mem.flush()
        mem.disarm_faults()
        mem.crash()
        assert mem.read(0, 8) == b"A" * 8

    def test_torn_flush_persists_chosen_prefix(self, mem):
        line = mem.profile.line_size
        mem.write(0, b"A" * (line * 3))
        mem.flush()
        mem.write(0, b"B" * (line * 3))
        plan = FaultPlan(
            "flush", 1, torn=TornFlush(order_seed=None, persisted_lines=1)
        )
        mem.arm_faults(plan)
        with pytest.raises(CrashPoint):
            mem.flush()
        mem.disarm_faults()
        mem.crash()
        # Sorted order: exactly the first line persisted.
        assert mem.read(0, line) == b"B" * line
        assert mem.read(line, line * 2) == b"A" * (line * 2)

    def test_partial_bytes_round_down_to_atomic_unit(self, mem):
        line = mem.profile.line_size
        unit = mem.profile.atomic_unit
        mem.write(0, b"A" * line)
        mem.flush()
        mem.write(0, b"B" * line)
        cut = unit + unit // 2  # deliberately unaligned request
        plan = FaultPlan("flush", 1, torn=TornFlush(None, 0, cut))
        mem.arm_faults(plan)
        with pytest.raises(CrashPoint):
            mem.flush()
        mem.disarm_faults()
        mem.crash()
        persisted = (cut // unit) * unit
        assert mem.read(0, persisted) == b"B" * persisted
        assert mem.read(persisted, line - persisted) == b"A" * (line - persisted)

    def test_same_seed_tears_identically(self, mem):
        def wreckage(seed):
            m = SimulatedMemory(DeviceProfile.nvm(), 1 << 16)
            m.write(0, b"A" * 2048)
            m.flush()
            m.write(0, b"B" * 2048)
            m.arm_faults(FaultPlan("flush", 1, torn=TornFlush(seed, 3, 16)))
            with pytest.raises(CrashPoint):
                m.flush()
            m.disarm_faults()
            m.crash()
            return m.read(0, 2048)

        assert wreckage(1234) == wreckage(1234)
        # A different seed permutes which lines persist.
        assert wreckage(1234) != wreckage(99)


class TestCrashAtLinePersist:
    def test_line_persist_ordinal_tears_mid_flush(self, mem):
        line = mem.profile.line_size
        mem.write(0, b"A" * (line * 4))
        mem.flush()
        mem.write(0, b"B" * (line * 4))
        mem.arm_faults(FaultPlan("line_persist", 2))
        with pytest.raises(CrashPoint):
            mem.flush()
        mem.disarm_faults()
        mem.crash()
        assert mem.read(0, line * 2) == b"B" * (line * 2)
        assert mem.read(line * 2, line * 2) == b"A" * (line * 2)

    def test_ordinal_spans_multiple_flushes(self, mem):
        line = mem.profile.line_size
        mem.write(0, b"A" * line)
        plan = FaultPlan("line_persist", 2)
        mem.arm_faults(plan)
        mem.flush()  # 1 line persist; no crash
        mem.write(line, b"B" * line)
        mem.write(line * 2, b"C" * line)
        with pytest.raises(CrashPoint):
            mem.flush()  # line persist #2 lands inside this flush
        mem.disarm_faults()
        mem.crash()
        assert mem.read(0, line) == b"A" * line
        # Exactly one of the second flush's two lines persisted.
        survived = [
            mem.read(line, line) == b"B" * line,
            mem.read(line * 2, line) == b"C" * line,
        ]
        assert sum(survived) == 1


class TestReadCorruption:
    def test_corruption_fires_once_on_overlapping_read(self, mem):
        mem.write(0, b"\x00" * 64)
        mem.flush()
        plan = FaultPlan(corruptions=[ReadCorruption(8, b"\xff\xff")])
        mem.arm_faults(plan)
        first = mem.read(0, 16)
        assert first[8:10] == b"\xff\xff"
        assert first[:8] == bytes(8)
        # Sticky: the damage persists in the image but fires only once.
        assert not plan.has_pending_corruption
        assert mem.read(0, 16)[8:10] == b"\xff\xff"

    def test_non_sticky_corruption_is_transient(self, mem):
        mem.write(0, b"\x00" * 64)
        mem.flush()
        plan = FaultPlan(
            corruptions=[ReadCorruption(8, b"\xff", sticky=False)]
        )
        mem.arm_faults(plan)
        assert mem.read(8, 1) == b"\xff"
        assert mem.read(8, 1) == b"\x00"

    def test_non_overlapping_read_leaves_site_armed(self, mem):
        mem.write(0, b"\x00" * 64)
        mem.flush()
        plan = FaultPlan(corruptions=[ReadCorruption(32, b"\xff")])
        mem.arm_faults(plan)
        assert mem.read(0, 16) == bytes(16)
        assert plan.has_pending_corruption
        assert mem.read(32, 1) == b"\xff"

    def test_boundary_spanning_site_rearms_unread_suffix(self, mem):
        """A site read piecewise must damage *every* byte eventually.

        Regression: a corruption spanning a read-window boundary used to
        be consumed wholesale by the first overlapping read, silently
        dropping the damage outside that window.
        """
        mem.write(0, b"\x00" * 64)
        mem.flush()
        plan = FaultPlan(corruptions=[ReadCorruption(14, b"\xaa" * 4)])
        mem.arm_faults(plan)
        # First window covers only bytes [14, 16) of the site.
        assert mem.read(0, 16)[14:16] == b"\xaa\xaa"
        # The unread suffix [16, 18) re-armed as a fresh site.
        assert plan.has_pending_corruption
        assert mem.read(16, 2) == b"\xaa\xaa"
        assert not plan.has_pending_corruption

    def test_boundary_spanning_site_rearms_unread_prefix(self, mem):
        mem.write(0, b"\x00" * 64)
        mem.flush()
        plan = FaultPlan(corruptions=[ReadCorruption(14, b"\xbb" * 4)])
        mem.arm_faults(plan)
        # First window covers only the tail [16, 18) of the site.
        assert mem.read(16, 4)[:2] == b"\xbb\xbb"
        # The unread prefix [14, 16) re-armed and still fires.
        assert plan.has_pending_corruption
        assert mem.read(8, 8)[6:8] == b"\xbb\xbb"

    def test_piecewise_reads_surface_all_sticky_damage(self, mem):
        """Word-by-word reads across a sticky site leave the image fully
        damaged -- identical to one wide read."""
        mem.write(0, bytes(range(64)))
        mem.flush()
        site = ReadCorruption(6, b"\xff" * 8, sticky=True)
        mem.arm_faults(FaultPlan(corruptions=[site]))
        for off in range(0, 16, 2):
            mem.read(off, 2)
        mem.disarm_faults()
        damaged = mem.read(0, 16)
        expected = bytearray(range(16))
        for b in range(6, 14):
            expected[b] ^= 0xFF
        assert damaged == bytes(expected)


class TestDisarm:
    def test_disarm_stops_counting_and_crashing(self, mem):
        plan = FaultPlan("write", 1)
        mem.arm_faults(plan)
        mem.disarm_faults()
        mem.write(0, b"x")  # would have crashed if still armed
        assert plan.events["write"] == 0
