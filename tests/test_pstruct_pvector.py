"""Unit and property tests for the persistent vector."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError
from repro.nvm.allocator import PoolAllocator
from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory
from repro.pstruct.pvector import PVector


def make_allocator(size=1 << 20):
    mem = SimulatedMemory(DeviceProfile.nvm(), size)
    return PoolAllocator(mem, base=0, capacity=size)


class TestBasics:
    def test_append_and_get(self):
        vec = PVector.create(make_allocator(), capacity=10)
        vec.append(42)
        vec.append(7)
        assert len(vec) == 2
        assert vec.get(0) == 42
        assert vec.get(1) == 7

    def test_set(self):
        vec = PVector.create(make_allocator(), capacity=4)
        vec.append(1)
        vec.set(0, 99)
        assert vec.get(0) == 99

    def test_index_bounds(self):
        vec = PVector.create(make_allocator(), capacity=4)
        vec.append(1)
        with pytest.raises(IndexError):
            vec.get(1)
        with pytest.raises(IndexError):
            vec.set(-1, 0)

    def test_extend_and_iter(self):
        vec = PVector.create(make_allocator(), capacity=1000)
        values = list(range(700))
        vec.extend(values)
        assert vec.to_list() == values

    def test_extend_empty_noop(self):
        vec = PVector.create(make_allocator(), capacity=4)
        vec.extend([])
        assert len(vec) == 0

    def test_clear(self):
        vec = PVector.create(make_allocator(), capacity=4)
        vec.extend([1, 2, 3])
        vec.clear()
        assert len(vec) == 0
        assert vec.to_list() == []

    def test_u64_elements(self):
        vec = PVector.create(make_allocator(), capacity=4, elem_size=8)
        big = (1 << 63) + 17
        vec.append(big)
        assert vec.get(0) == big

    def test_invalid_elem_size(self):
        with pytest.raises(ValueError):
            PVector.create(make_allocator(), capacity=4, elem_size=3)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PVector.create(make_allocator(), capacity=0)


class TestCapacitySemantics:
    def test_fixed_vector_overflow_raises(self):
        vec = PVector.create(make_allocator(), capacity=2)
        vec.append(1)
        vec.append(2)
        with pytest.raises(CapacityError):
            vec.append(3)

    def test_extend_overflow_raises(self):
        vec = PVector.create(make_allocator(), capacity=2)
        with pytest.raises(CapacityError):
            vec.extend([1, 2, 3])

    def test_growable_vector_grows(self):
        vec = PVector.create(make_allocator(), capacity=2, growable=True)
        for i in range(20):
            vec.append(i)
        assert vec.to_list() == list(range(20))
        assert vec.reconstructions >= 3  # 2 -> 4 -> 8 -> 16 -> 32

    def test_growth_costs_device_traffic(self):
        """Reconstruction is the expensive path the paper avoids."""
        alloc_fixed = make_allocator()
        fixed = PVector.create(alloc_fixed, capacity=1024)
        for i in range(1000):
            fixed.append(i)
        fixed_cost = alloc_fixed.memory.clock.ns

        alloc_grow = make_allocator()
        grow = PVector.create(alloc_grow, capacity=2, growable=True)
        for i in range(1000):
            grow.append(i)
        grow_cost = alloc_grow.memory.clock.ns
        assert grow_cost > fixed_cost


class TestPersistence:
    def test_attach_reopens_contents(self):
        alloc = make_allocator()
        vec = PVector.create(alloc, capacity=8)
        vec.extend([5, 6, 7])
        reopened = PVector.attach(alloc, vec.header_offset)
        assert reopened.to_list() == [5, 6, 7]

    def test_attach_after_growth_sees_relocated_data(self):
        alloc = make_allocator()
        vec = PVector.create(alloc, capacity=2, growable=True)
        vec.extend([1, 2, 3, 4, 5])
        reopened = PVector.attach(alloc, vec.header_offset)
        assert reopened.to_list() == [1, 2, 3, 4, 5]
        assert reopened.capacity == vec.capacity

    def test_survives_flush_and_crash(self):
        alloc = make_allocator()
        mem = alloc.memory
        vec = PVector.create(alloc, capacity=8)
        vec.extend([9, 8, 7])
        mem.flush()
        mem.crash()
        reopened = PVector.attach(alloc, vec.header_offset)
        assert reopened.to_list() == [9, 8, 7]


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("append"), st.integers(0, 2**32 - 1)),
            st.tuples(st.just("set"), st.integers(0, 2**32 - 1)),
            st.tuples(st.just("clear"), st.just(0)),
        ),
        max_size=60,
    )
)
def test_property_matches_python_list(ops):
    """PVector behaves exactly like a Python list under a random op mix."""
    vec = PVector.create(make_allocator(), capacity=4, growable=True)
    model = []
    for op, value in ops:
        if op == "append":
            vec.append(value)
            model.append(value)
        elif op == "set" and model:
            index = value % len(model)
            vec.set(index, value)
            model[index] = value
        elif op == "clear":
            vec.clear()
            model.clear()
    assert vec.to_list() == model
    assert len(vec) == len(model)
