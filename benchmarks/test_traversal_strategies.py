"""Section VI-E: top-down vs bottom-up traversal on the many-file dataset.

Paper: on dataset B, per-file analytics with the top-down strategy is
"approximately 1000x" slower than bottom-up, because top-down "chooses to
traverse the DAG for each file individually for weight propagation" --
its cost is O(files x |DAG|) while bottom-up pays the word-list
preprocessing once.  The factor is a function of the file count (134,631
in the paper), so at laptop scale we measure it at increasing file
counts and check the growth law.
"""

from conftest import once

from repro.analytics import task_by_name
from repro.core.engine import EngineConfig
from repro.harness import figures
from repro.harness.runner import run_system


def test_topdown_collapses_on_many_files(benchmark, runs):
    figure = once(benchmark, figures.traversal_strategies, runs)
    print()
    print(figure.render())
    points = figure.data["points"]
    ratios = [ratio for _, ratio in points]

    # Shape 1: top-down is slower at every probed scale.
    assert all(r > 1.0 for r in ratios)
    # Shape 2: the gap grows with the file count (the VI-E mechanism).
    assert ratios[-1] > ratios[0]
    # Shape 3: the projection lands within an order of magnitude of the
    # paper's three-orders-of-magnitude claim.
    assert figure.data["projected_at_paper_scale"] > 100


def test_auto_strategy_picks_bottomup_for_many_files(benchmark, runs):
    def resolve():
        return runs.get("ntadoc", "B", "inverted_index").strategy

    assert once(benchmark, resolve) == "bottomup"


def test_auto_strategy_picks_topdown_for_few_files(benchmark, runs):
    def resolve():
        return runs.get("ntadoc", "C", "inverted_index").strategy

    assert once(benchmark, resolve) == "topdown"


def test_bottomup_beats_topdown_only_in_its_regime(benchmark, runs):
    """On a few-large-files corpus, top-down per-file traversal is fine
    (the full sweep runs only a handful of times) while bottom-up pays
    the whole word-list preprocessing."""

    def run_c():
        corpus = runs.corpus("C")
        bottomup = run_system(
            "ntadoc", corpus, task_by_name("term_vector"),
            EngineConfig(traversal="bottomup"),
        )
        topdown = run_system(
            "ntadoc", corpus, task_by_name("term_vector"),
            EngineConfig(traversal="topdown"),
        )
        assert bottomup.result == topdown.result
        return bottomup, topdown

    bottomup, topdown = once(benchmark, run_c)
    print()
    print(
        f"dataset C term_vector traversal: bottom-up "
        f"{bottomup.traversal_ns / 1e6:.3f} sim ms vs top-down "
        f"{topdown.traversal_ns / 1e6:.3f} sim ms"
    )
    assert topdown.traversal_ns < bottomup.traversal_ns
