"""Shared fixtures for the figure/table benchmarks.

The experiment logic lives in :mod:`repro.harness.figures`; these
benchmarks invoke the builders through a session-wide
:class:`repro.harness.cache.RunCache` (every cell executes once) and
assert the paper's shapes on the returned data payloads.  Compressed
corpora are cached on disk under ``benchmarks/.cache`` so Sequitur runs
only on the first invocation ever.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.harness.cache import RunCache
from repro.harness.figures import DATASETS, TASKS  # noqa: F401 (re-export)

CACHE_DIR = Path(__file__).parent / ".cache"

#: Rounds per benchmark body; set from ``--repeats`` in pytest_configure.
_REPEATS = 1


def pytest_addoption(parser):
    parser.addoption(
        "--repeats",
        action="store",
        type=int,
        default=1,
        help="Run each benchmark body N times; pytest-benchmark reports "
        "the median round, absorbing transient machine noise.",
    )


def pytest_configure(config):
    global _REPEATS
    _REPEATS = max(1, config.getoption("--repeats", 1))


def repeats() -> int:
    """The configured ``--repeats`` round count."""
    return _REPEATS


@pytest.fixture(scope="session")
def runs() -> RunCache:
    return RunCache(cache_dir=CACHE_DIR)


@pytest.fixture(scope="session")
def corpora(runs):
    return {name: runs.corpus(name) for name in DATASETS}


def once(benchmark, func, *args, **kwargs):
    """Run ``func`` under pytest-benchmark timing.

    With the default ``--repeats 1`` the body executes exactly once;
    higher repeat counts re-run it as extra rounds and the benchmark
    table's median column becomes the noise-robust summary.
    """
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=_REPEATS, iterations=1
    )
