"""Shared fixtures for the figure/table benchmarks.

The experiment logic lives in :mod:`repro.harness.figures`; these
benchmarks invoke the builders through a session-wide
:class:`repro.harness.cache.RunCache` (every cell executes once) and
assert the paper's shapes on the returned data payloads.  Compressed
corpora are cached on disk under ``benchmarks/.cache`` so Sequitur runs
only on the first invocation ever.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.harness.cache import RunCache
from repro.harness.figures import DATASETS, TASKS  # noqa: F401 (re-export)

CACHE_DIR = Path(__file__).parent / ".cache"


@pytest.fixture(scope="session")
def runs() -> RunCache:
    return RunCache(cache_dir=CACHE_DIR)


@pytest.fixture(scope="session")
def corpora(runs):
    return {name: runs.corpus(name) for name in DATASETS}


def once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
