"""Section IV-B: grammar redundancy eliminated by pruning.

Paper: "This arrangement eliminates at most 50.2% of the grammar
redundancy on NVM."  We report the per-dataset entry reduction of
Algorithm 1 and check that pruning is never harmful and reaches
substantial savings on the most redundant rules.
"""

from conftest import once

from repro.harness import figures


def test_pruning_redundancy_elimination(benchmark, runs):
    figure = once(benchmark, figures.pruning, runs)
    print()
    print(figure.render())
    corpus_savings = figure.data["corpus_savings"].values()
    best_rules = figure.data["best_rules"].values()
    # Pruning never increases the representation.
    assert all(s >= 0.0 for s in corpus_savings)
    # Redundancy is real: some dataset saves a meaningful fraction, and
    # individual rules reach the paper's ~50% ballpark.
    assert max(corpus_savings) > 0.05
    assert max(best_rules) > 0.3


def test_pruned_traversal_reads_fewer_bytes(benchmark, runs):
    """Pruning + pool layout -> less device traffic for the same answers."""

    def observe():
        nt = runs.get("ntadoc", "C", "word_count")
        naive = runs.get("naive_nvm", "C", "word_count")
        assert nt.result == naive.result
        return nt.pool_stats, naive.pool_stats

    nt_stats, naive_stats = once(benchmark, observe)
    print()
    print(
        f"cache misses -- pruned pool: {nt_stats.cache_misses}, "
        f"naive port: {naive_stats.cache_misses}"
    )
    assert nt_stats.cache_misses < naive_stats.cache_misses
