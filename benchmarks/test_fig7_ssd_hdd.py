"""Fig. 7: N-TADOC on NVM vs the same compressed pipeline on SSD and HDD.

Paper: N-TADOC (phase-level) achieves 1.87x speedup over the SSD variant
and 2.92x over the HDD variant -- byte-addressable NVM serves TADOC's
random accesses at line granularity while block devices pay full-block
transfers plus per-I/O software overhead behind a page cache.
"""

from conftest import once

from repro.harness import figures


def test_fig7_ssd_hdd(benchmark, runs):
    figure = once(benchmark, figures.fig7, runs)
    print()
    print(figure.render())
    ssd_avg = figure.data["ssd_geomean"]
    hdd_avg = figure.data["hdd_geomean"]
    # Shape: NVM beats SSD beats HDD, by growing factors.
    assert ssd_avg > 1.0
    assert hdd_avg > ssd_avg
    assert 1.05 <= ssd_avg <= 3.5
    assert 1.5 <= hdd_avg <= 6.0
