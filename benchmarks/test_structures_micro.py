"""Microbenchmarks of the persistent structures (wall-clock, pytest-benchmark).

These are conventional pytest-benchmark microbenchmarks (multiple rounds,
real time): they track the Python-level cost of the byte-packed
structures so regressions in the simulator hot paths are visible.
"""

import pytest

from repro.nvm.allocator import PoolAllocator
from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory
from repro.pstruct.phashtable import PHashTable
from repro.pstruct.pqueue import PQueue
from repro.pstruct.pvector import PVector


def make_allocator(size=1 << 26):
    mem = SimulatedMemory(DeviceProfile.nvm(), size)
    return PoolAllocator(mem, base=0, capacity=size)


@pytest.fixture
def allocator():
    return make_allocator()


def test_bench_pvector_append(benchmark, allocator):
    def run():
        vec = PVector.create(allocator, capacity=2048)
        for i in range(2000):
            vec.append(i)
        return len(vec)

    assert benchmark(run) == 2000


def test_bench_pvector_bulk_extend(benchmark, allocator):
    values = list(range(2000))
    vec = PVector.create(allocator, capacity=2048)

    def run():
        vec.clear()
        vec.extend(values)
        return len(vec)

    assert benchmark(run) == 2000


def test_bench_phashtable_insert(benchmark, allocator):
    def run():
        table = PHashTable.create(allocator, expected_entries=2048)
        for i in range(1500):
            table.put(i * 7919, i)
        return len(table)

    assert benchmark(run) == 1500


def test_bench_phashtable_lookup(benchmark):
    allocator = make_allocator()
    table = PHashTable.create(allocator, expected_entries=2048)
    for i in range(1500):
        table.put(i * 7919, i)

    def run():
        total = 0
        for i in range(1500):
            total += table.get(i * 7919)
        return total

    assert benchmark(run) == sum(range(1500))


def test_bench_phashtable_scan(benchmark):
    allocator = make_allocator()
    table = PHashTable.create(allocator, expected_entries=4096)
    for i in range(3000):
        table.put(i, i)

    def run():
        return sum(v for _, v in table.items())

    assert benchmark(run) == sum(range(3000))


def test_bench_pqueue_cycle(benchmark, allocator):
    queue = PQueue.create(allocator, capacity=512)

    def run():
        for i in range(500):
            queue.push(i)
        total = 0
        for _ in range(500):
            total += queue.pop()
        return total

    assert benchmark(run) == sum(range(500))


def test_bench_simulated_memory_sequential_read(benchmark):
    mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 22)

    def run():
        total = 0
        for offset in range(0, 1 << 20, 4096):
            total += len(mem.read(offset, 4096))
        return total

    assert benchmark(run) == 1 << 20
