"""Section VI-F "vision for the future": N-TADOC on ReRAM and PCM.

The paper plans to "migrate N-TADOC to other NVM-based architectures" --
naming ReRAM and PCM -- to "explore and compare the performance of
N-TADOC on different platforms".  This bench runs exactly that
comparison on the simulated device profiles: same engine, same
workloads, cost tables swapped.
"""

from conftest import DATASETS, once

from repro.harness.comparisons import geometric_mean
from repro.harness.tables import format_table

_TASKS = ("word_count", "sequence_count")
_DEVICES = ("dram", "reram", "nvm", "pcm")


def build_matrix(runs):
    matrix = {}
    for dataset in DATASETS:
        for task in _TASKS:
            baseline = None
            for device in _DEVICES:
                if device == "dram":
                    run = runs.get("tadoc_dram", dataset, task)
                else:
                    run = runs.get("ntadoc_custom", dataset, task, device=device)
                if baseline is None:
                    baseline = run.result
                else:
                    assert run.result == baseline
                matrix[dataset, task, device] = run.total_ns
    return matrix


def test_future_nvm_architectures(benchmark, runs):
    matrix = once(benchmark, build_matrix, runs)
    rows = []
    for dataset in DATASETS:
        for task in _TASKS:
            dram_ns = matrix[dataset, task, "dram"]
            rows.append(
                [dataset, task]
                + [
                    f"{matrix[dataset, task, device] / dram_ns:.2f}"
                    for device in _DEVICES
                ]
            )
    print()
    print(
        format_table(
            ["Dataset", "Task"] + [f"{d} (x DRAM)" for d in _DEVICES],
            rows,
            title="Section VI-F analog: N-TADOC across NVM architectures "
            "(slowdown vs DRAM TADOC)",
        )
    )

    def mean_for(device):
        return geometric_mean(
            matrix[d, t, device] / matrix[d, t, "dram"]
            for d in DATASETS
            for t in _TASKS
        )

    reram = mean_for("reram")
    optane = mean_for("nvm")
    pcm = mean_for("pcm")
    print(
        f"geomean slowdown vs DRAM -- reram: {reram:.2f}x, "
        f"optane: {optane:.2f}x, pcm: {pcm:.2f}x"
    )
    # Shape: PCM's slow writes make it the worst persistent candidate;
    # ReRAM is at least competitive with Optane; every persistent medium
    # costs something over volatile DRAM.
    assert pcm > optane
    assert reram <= optane * 1.1
    assert all(mean_for(d) >= 0.95 for d in ("reram", "nvm", "pcm"))
