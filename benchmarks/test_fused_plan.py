"""Fused-plan benchmark: 3 tasks, one pool build, minimal DAG passes.

The shared-traversal planner's acceptance shape: running
``[word_count, inverted_index, term_vector]`` through
``NTadocEngine.run_many`` must beat three sequential ``run()`` calls by
a wide margin in *simulated* time (the shared pool build, word-list
pass, and per-file counts are charged once instead of three times), and
must not be slower in wall-clock either (it does strictly less host
work).

Measured numbers are recorded in ``BENCH_fused.json`` at the repo root,
following the ``BENCH_batch.json`` pattern; CI uploads it as an
artifact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analytics import InvertedIndex, TermVector, WordCount
from repro.core.engine import EngineConfig, NTadocEngine
from repro.harness.crashsweep import canonical_result

_OUT = Path(__file__).resolve().parent.parent / "BENCH_fused.json"

#: Profile B: many small files -- the shape where per-file work dominates
#: and shared traversal pays off the most (Section VI-E's regime).
_DATASET = "B"
_SCALE = 1.0

#: Pinned bottom-up traversal: all three tasks answer from the word-list
#: substrate, so sequential runs pay the word-list build three times and
#: the fused plan exactly once -- the planner's designed regime, with the
#: same strategy on both sides of the comparison.
_CONFIG = EngineConfig(traversal="bottomup")


def _tasks():
    return [WordCount(), InvertedIndex(), TermVector()]


def test_fused_plan_beats_three_sequential_runs(runs):
    corpus = runs.corpus(_DATASET, _SCALE)
    engine = NTadocEngine(corpus, _CONFIG)

    # Interleave repetitions so transient machine load hits both paths;
    # keep the best (least-disturbed) wall time for each.  Simulated
    # time is deterministic, so one capture of each suffices.
    seq_wall = fused_wall = float("inf")
    sequential = None
    plan = None
    for _ in range(2):
        start = time.perf_counter()
        sequential = [engine.run(task) for task in _tasks()]
        seq_wall = min(seq_wall, time.perf_counter() - start)

        start = time.perf_counter()
        plan = engine.run_many(_tasks())
        fused_wall = min(fused_wall, time.perf_counter() - start)

    # Sanity: fusion must not change any result.
    for solo, fused in zip(sequential, plan):
        assert canonical_result(fused.result) == canonical_result(solo.result)

    seq_ns = sum(run.total_ns for run in sequential)
    sim_speedup = seq_ns / plan.total_ns
    wall_speedup = seq_wall / fused_wall

    _OUT.write_text(
        json.dumps(
            {
                "workload": {
                    "dataset": _DATASET,
                    "scale": _SCALE,
                    "traversal": _CONFIG.traversal,
                    "tasks": [task.name for task in _tasks()],
                    "n_files": corpus.n_files,
                    "n_rules": corpus.n_rules,
                },
                "plan_stats": {
                    "pool_builds": plan.stats.pool_builds,
                    "dag_passes": plan.stats.dag_passes,
                    "segment_sweeps": plan.stats.segment_sweeps,
                },
                "sequential_sim_ns": round(seq_ns, 1),
                "fused_sim_ns": round(plan.total_ns, 1),
                "sim_speedup": round(sim_speedup, 3),
                "sequential_wall_s": round(seq_wall, 6),
                "fused_wall_s": round(fused_wall, 6),
                "wall_speedup": round(wall_speedup, 3),
            },
            indent=2,
        )
        + "\n"
    )

    # The planner's contract: one pool build, at most one DAG pass per
    # direction, one segment sweep.
    assert plan.stats.pool_builds == 1
    assert all(count <= 1 for count in plan.stats.dag_passes.values())
    assert plan.stats.segment_sweeps == 1

    # Acceptance threshold: >= 1.8x simulated-time reduction vs 3x
    # sequential at scale 1.0.
    assert sim_speedup >= 1.8, f"fused plan only {sim_speedup:.2f}x in sim-ns"

    # Wall clock: fused does strictly less host work; a loose bound
    # tolerates noisy shared CI machines.
    assert wall_speedup > 1.1, f"fused plan only {wall_speedup:.2f}x in wall"
