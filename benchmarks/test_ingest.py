"""Ingest benchmark: incremental segments vs recompress-from-scratch.

The segmented design's acceptance shape: on a streaming workload --
bulk load, then rounds of ~10% appends plus deletes, with analytics at
every checkpoint -- the incremental engine (compress only the delta,
query per-segment, merge) must beat a non-incremental system (recompress
the whole live corpus at every checkpoint, then query) by >= 3x in
*simulated* time, while producing canonically identical results.

Measured numbers are recorded in ``BENCH_ingest.json`` at the repo
root, following the ``BENCH_fused.json`` pattern; CI uploads it as an
artifact.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.engine import EngineConfig
from repro.ingest import SegmentedEngine, canonical_json
from repro.ingest.trace import replay_trace, synthetic_trace

_OUT = Path(__file__).resolve().parent.parent / "BENCH_ingest.json"

#: Streaming trace: bulk load then 5 rounds of 10% appends + deletes,
#: a seal and an analytics checkpoint per round (Zipf word frequencies,
#: so Sequitur finds repeated phrases on both sides of the comparison).
_TRACE = dict(n_docs=120, doc_tokens=50, rounds=5, delta_fraction=0.1, seed=7)

#: The CLI's default checkpoint tasks: one count task, one posting task.
_TASKS = ("word_count", "inverted_index")

_MIN_SPEEDUP = 3.0


def test_incremental_beats_recompress_by_3x():
    ops = synthetic_trace(**_TRACE)
    engine = SegmentedEngine(EngineConfig(), seal_threshold_tokens=10**9)

    # The baseline recompresses the *current* live corpus at each
    # checkpoint on its own clock, so the two sides pay for identical
    # corpus states; equality of the rendered results is asserted along
    # the way (the differential contract, on the benchmark workload).
    baseline_ns = 0.0
    checkpoints = 0

    def on_checkpoint(index, result):
        nonlocal baseline_ns, checkpoints
        base_rendered, base_ns = engine.recompress_baseline(list(_TASKS))
        baseline_ns += base_ns
        checkpoints += 1
        for task in _TASKS:
            assert canonical_json(result.rendered[task]) == canonical_json(
                base_rendered[task]
            ), task

    replay_trace(engine, ops, tasks=_TASKS, on_checkpoint=on_checkpoint)
    incremental_ns = engine.clock.ns
    speedup = baseline_ns / incremental_ns

    _OUT.write_text(
        json.dumps(
            {
                "workload": {
                    **_TRACE,
                    "tasks": list(_TASKS),
                    "checkpoints": checkpoints,
                    "final_live_docs": engine.corpus.n_live,
                    "final_segments": len(engine.corpus.segments),
                    "tombstoned": engine.corpus.n_tombstoned,
                },
                "incremental_sim_ns": round(incremental_ns, 1),
                "recompress_sim_ns": round(baseline_ns, 1),
                "sim_speedup": round(speedup, 3),
                "min_speedup": _MIN_SPEEDUP,
            },
            indent=2,
        )
        + "\n"
    )

    assert checkpoints == _TRACE["rounds"] + 1
    # Acceptance threshold: the incremental engine compresses ~10% of
    # the corpus per round; the baseline recompresses all of it.
    assert speedup >= _MIN_SPEEDUP, (
        f"incremental ingest only {speedup:.2f}x vs recompress-from-scratch"
    )
