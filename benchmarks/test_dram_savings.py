"""Section VI-C: DRAM space savings of N-TADOC over TADOC.

Paper: average saving 70.7%; per dataset A 65.6%, B 70.7%, C 72.2%,
D 74.3% (larger datasets save proportionally more); per benchmark, word
count saves the most (79.8%) and sequence count the least (60.7%).
"""

from conftest import DATASETS, TASKS, once

from repro.harness import figures


def test_dram_space_savings(benchmark, runs):
    figure = once(benchmark, figures.dram_savings, runs)
    print()
    print(figure.render())
    matrix = figure.data["matrix"]
    values = list(matrix.values())

    # Shape 1: substantial savings everywhere.
    assert all(s > 0.4 for s in values)
    assert 0.55 <= figure.data["average"] <= 0.95

    # Shape 2: sequence tasks save the least (their n-gram working state
    # stays in DRAM); word count is among the highest savers.
    per_task = {
        task: sum(matrix[d, task] for d in DATASETS) / len(DATASETS)
        for task in TASKS
    }
    assert per_task["sequence_count"] <= per_task["word_count"]
    assert min(per_task, key=per_task.get) in (
        "sequence_count",
        "ranked_inverted_index",
    )


def test_larger_datasets_save_more(benchmark, runs):
    def per_dataset():
        matrix = figures.dram_savings(runs).data["matrix"]
        return {
            dataset: sum(matrix[dataset, t] for t in TASKS) / len(TASKS)
            for dataset in DATASETS
        }

    by_dataset = once(benchmark, per_dataset)
    print()
    for dataset, value in by_dataset.items():
        print(f"  dataset {dataset}: {value * 100:.1f}% saved")
    # Paper: A 65.6% < B 70.7% < C 72.2% < D 74.3%.  Shape: the largest
    # dataset saves at least as much as the smallest.
    assert by_dataset["D"] >= by_dataset["A"] - 0.05
