"""Wall-clock guard for the batched device access layer.

The run-partitioned fast path (``SimulatedMemory(batched=True)``, the
default) exists purely to make the simulator cheap to execute; its
simulated time is bit-identical to the per-line reference loop
(``tests/test_batch_equivalence.py`` proves that).  This guard pins the
*wall-clock* half of the contract: replaying the same multi-line
workload through both implementations, the batch path must stay
decisively faster -- a regression here silently multiplies every
benchmark's runtime.

Measured wall times are recorded in ``BENCH_batch.json`` at the repo
root so successive runs can be compared.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory

_OUT = Path(__file__).resolve().parent.parent / "BENCH_batch.json"

_SIZE = 1 << 22        # 4 MiB device
_CACHE = 1 << 14       # 16 KiB cache -> constant eviction traffic
_SPAN = 1 << 16        # 64 KiB ops: 256 NVM lines each
_OPS = 120


def _workload(mem: SimulatedMemory) -> None:
    payload = b"\x5a" * _SPAN
    limit = mem.size - _SPAN
    for i in range(_OPS):
        offset = (i * 37 * mem.profile.line_size) % limit
        mem.write(offset, payload)
        mem.read(offset, _SPAN)
        # Hot re-reads of a cache-resident block -- the all-hit shape
        # where run charging beats the per-line loop the hardest.
        for _ in range(4):
            mem.read(offset, _CACHE // 2)
        if i % 16 == 15:
            mem.flush()
    mem.flush()


def _timed(batched: bool) -> tuple[float, float]:
    mem = SimulatedMemory(
        DeviceProfile.nvm(), _SIZE, cache_bytes=_CACHE, batched=batched
    )
    start = time.perf_counter()
    _workload(mem)
    return time.perf_counter() - start, mem.clock.ns


def test_batched_path_faster_same_simulated_time():
    # Interleave repetitions so transient machine load hits both paths;
    # keep the best (least-disturbed) time for each.
    ref_wall, fast_wall = float("inf"), float("inf")
    ref_ns = fast_ns = None
    for _ in range(3):
        wall, ns = _timed(batched=False)
        ref_wall = min(ref_wall, wall)
        ref_ns = ns
        wall, ns = _timed(batched=True)
        fast_wall = min(fast_wall, wall)
        fast_ns = ns

    # The two implementations must agree exactly on simulated time.
    assert fast_ns == ref_ns

    speedup = ref_wall / fast_wall
    _OUT.write_text(
        json.dumps(
            {
                "workload": {
                    "device": "nvm",
                    "size_bytes": _SIZE,
                    "cache_bytes": _CACHE,
                    "span_bytes": _SPAN,
                    "ops": _OPS,
                },
                "reference_wall_s": round(ref_wall, 6),
                "batched_wall_s": round(fast_wall, 6),
                "wall_speedup": round(speedup, 3),
                "simulated_ns": fast_ns,
            },
            indent=2,
        )
        + "\n"
    )
    # Loose bound: the fast path wins by ~2x on this shape locally;
    # 1.4x tolerates noisy shared CI machines while still catching a
    # fast path that degenerated to per-line work.
    assert speedup > 1.4, f"batch fast path only {speedup:.2f}x faster"
