"""Wall-clock guard for the bulk-kernel subsystem.

The kernels (``repro.kernels``) exist purely to make the simulator
cheap to execute: simulated time is bit-identical across modes (held by
``tests/test_kernel_equivalence.py`` and re-asserted here), so the only
thing to gate is wall-clock.  This guard runs the paper's wc+ii+tv trio
fused on dataset B with kernels off and on, interleaving repetitions so
transient machine load hits every mode, and requires the kernel path to
stay decisively faster.

The floor is deliberately conservative (CI boxes are noisy); the
*measured* speedups are recorded in ``BENCH_kernels.json`` at the repo
root for comparison across runs.  Local measurements sit around 1.5x;
raise ``--repeats`` for tighter medians.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import repeats
from repro.analytics.inverted_index import InvertedIndex
from repro.analytics.term_vector import TermVector
from repro.analytics.word_count import WordCount
from repro.core.engine import EngineConfig, NTadocEngine

_OUT = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

#: Required off->auto wall speedup on the fused trio.  Conservative
#: floor under CI noise; see the JSON artifact for measured values.
_MIN_SPEEDUP = 1.15

_MODES = ("off", "auto", "python")


def _trio(engine) -> tuple[float, float]:
    tasks = [WordCount(), InvertedIndex(), TermVector()]
    start = time.perf_counter()
    result = engine.run_many(tasks)
    return time.perf_counter() - start, result.total_ns


def test_kernel_trio_speedup(runs):
    corpus = runs.corpus("B")
    engines = {
        mode: NTadocEngine(corpus, EngineConfig(kernels=mode)) for mode in _MODES
    }
    for engine in engines.values():  # warm every path once
        _trio(engine)

    rounds = max(3, repeats())
    walls: dict[str, list[float]] = {mode: [] for mode in _MODES}
    sim_ns: dict[str, float] = {}
    for _ in range(rounds):
        for mode, engine in engines.items():
            wall, ns = _trio(engine)
            walls[mode].append(wall)
            sim_ns[mode] = ns

    # Bit-identical simulated time across every mode, every run.
    assert sim_ns["auto"] == sim_ns["off"]
    assert sim_ns["python"] == sim_ns["off"]

    best = {mode: min(ws) for mode, ws in walls.items()}
    speedup_auto = best["off"] / best["auto"]
    speedup_python = best["off"] / best["python"]

    _OUT.write_text(
        json.dumps(
            {
                "workload": {
                    "tasks": ["word_count", "inverted_index", "term_vector"],
                    "dataset": "B",
                    "scale": 1.0,
                    "fused": True,
                },
                "rounds": rounds,
                "simulated_ns": sim_ns["off"],
                "wall_seconds_min": {m: round(best[m], 6) for m in _MODES},
                "speedup": {
                    "auto": round(speedup_auto, 3),
                    "python": round(speedup_python, 3),
                },
                "floor": _MIN_SPEEDUP,
            },
            indent=2,
        )
        + "\n"
    )

    assert speedup_auto >= _MIN_SPEEDUP, (
        f"kernel trio speedup {speedup_auto:.2f}x under the {_MIN_SPEEDUP}x "
        f"floor (off {best['off']:.3f}s vs auto {best['auto']:.3f}s); see "
        "BENCH_kernels.json"
    )
