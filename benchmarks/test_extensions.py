"""Benchmarks for the beyond-the-paper extensions.

* parallel rule processing (G-TADOC-inspired level-synchronous workers);
* write-endurance comparison (Section VII: N-TADOC "reduces the write
  operations on NVM ... to improve write endurance");
* random access into compressed data (the TADOC line's ICDE'20 work).
"""

from conftest import CACHE_DIR, once

from repro.analytics import task_by_name
from repro.core.dag import Dag
from repro.core.parallel import parallel_weight_propagation
from repro.core.pruning import PrunedDag
from repro.core.random_access import RandomAccessor
from repro.core.summation import summate_all
from repro.datasets import corpus_for
from repro.harness.tables import format_table
from repro.nvm.device import DeviceProfile
from repro.nvm.memory import SimulatedMemory
from repro.nvm.pool import NvmPool
from repro.nvm.wear import wear_report


def _pruned_pool(corpus, track_wear=False, scatter=False, growable=False):
    dag = Dag(corpus)
    mem = SimulatedMemory(
        DeviceProfile.nvm(), 1 << 24, cache_bytes=1 << 21, track_wear=track_wear
    )
    pool = NvmPool(mem, scatter=scatter)
    pruned = PrunedDag.build(
        pool, corpus, dag,
        bounds=None if growable else summate_all(dag),
        per_rule=scatter,
    )
    return dag, pruned, pool


def test_parallel_scaling(benchmark):
    """Weight-propagation speedup vs worker count, two DAG shapes.

    On a wide, shallow DAG (many sibling rules) level-synchronous workers
    deliver real speedups.  On the realistic dataset-D grammar -- deep
    and narrow, as template-heavy text produces -- rule-level parallelism
    barely pays: each level is too small to amortize barriers.  That
    *negative* result is itself faithful to the paper, which argues that
    GPU-era TADOC parallelization "cannot be utilized efficiently by
    NVMs"; the numbers here quantify why.
    """
    from repro.sequitur.compressor import compress_files

    def sweep():
        out = {}
        # (a) wide synthetic DAG: 200 sibling paragraph rules.
        paragraphs = [
            " ".join(f"a{p}_{i} b{p}_{i} a{p}_{i} b{p}_{i}" for i in range(15))
            for p in range(200)
        ]
        wide = compress_files(
            [("wide", " ".join(p + " " + p for p in paragraphs))]
        )
        # (b) the realistic dataset D grammar.
        deep = corpus_for("D", cache_dir=CACHE_DIR)
        for label, corpus in (("wide", wide), ("dataset D", deep)):
            rows = []
            for workers in (1, 2, 4, 8):
                dag, pruned, pool = _pruned_pool(corpus)
                levels = dag.topological_levels()
                report = parallel_weight_propagation(
                    pruned, pool.allocator, levels, workers=workers
                )
                rows.append((workers, report))
            out[label] = rows
        return out

    results = once(benchmark, sweep)
    print()
    for label, rows in results.items():
        print(
            format_table(
                ["Workers", "Elapsed (sim us)", "Speedup"],
                [
                    [w, f"{r.parallel_ns / 1e3:.1f}", f"{r.speedup:.2f}x"]
                    for w, r in rows
                ],
                title=f"Extension: parallel weight propagation ({label})",
            )
        )
    wide = {w: r.speedup for w, r in results["wide"]}
    deep = {w: r.speedup for w, r in results["dataset D"]}
    # The mechanism works where width exists...
    assert wide[4] > 1.5
    # ...and realistic deep grammars cap out early -- the paper's point.
    assert max(deep.values()) < wide[4]


def test_endurance_footprint(benchmark):
    """Media program events: N-TADOC layout vs the naive port's churn."""

    def measure():
        corpus = corpus_for("A", cache_dir=CACHE_DIR)
        out = {}
        for label, kwargs in (
            ("ntadoc", {}),
            ("naive", {"scatter": True, "growable": True}),
        ):
            _, pruned, pool = _pruned_pool(corpus, track_wear=True, **kwargs)
            pool.flush()
            out[label] = wear_report(pool.memory)
        return out

    reports = once(benchmark, measure)
    print()
    for label, report in reports.items():
        print(
            f"  {label:8s} programs={report.total_programs:7d} "
            f"cells={report.lines_touched:6d} hottest={report.max_line_programs}"
        )
    # The naive port programs more cells for the same logical content
    # (scatter gaps + per-rule indirection records), consuming more
    # endurance budget.
    assert reports["naive"].lines_touched > reports["ntadoc"].lines_touched


def test_random_access_scaling(benchmark):
    """Point access cost vs full expansion, per document (dataset C)."""

    def measure():
        corpus = corpus_for("C", cache_dir=CACHE_DIR)
        dag, pruned, pool = _pruned_pool(corpus)
        accessor = RandomAccessor(pruned, dag.expansion_lengths())
        clock = pool.memory.clock
        rows = []
        for file_index in range(min(accessor.n_files, 4)):
            length = accessor.file_length(file_index)
            start = clock.ns
            accessor.word_at(file_index, length // 2)
            point_ns = clock.ns - start
            start = clock.ns
            accessor.extract_file(file_index)
            full_ns = clock.ns - start
            rows.append((file_index, length, point_ns, full_ns))
        return rows

    rows = once(benchmark, measure)
    print()
    print(
        format_table(
            ["File", "Words", "Point access (ns)", "Full expansion (ns)"],
            [[f, n, f"{p:.0f}", f"{e:.0f}"] for f, n, p, e in rows],
            title="Extension: random access into compressed documents",
        )
    )
    for _file, _length, point_ns, full_ns in rows:
        assert point_ns < full_ns / 3


def test_streaming_ingestion_overhead(benchmark):
    """Streaming (chunk-compressed) ingestion vs monolithic compression.

    Chunks cannot reference earlier chunks' rules, so the streamed
    grammar is larger; merged analytics remain exact and the per-chunk
    engine runs sum to a modest overhead over the monolithic run.
    """
    from repro.analytics.word_count import WordCount
    from repro.core.engine import NTadocEngine
    from repro.core.streaming import StreamingCorpus
    from repro.datasets import dataset_files
    from repro.sequitur.compressor import compress_files

    def measure():
        files = dataset_files("B", scale=0.2)
        monolithic = compress_files(files)
        stream = StreamingCorpus()
        batch_size = max(1, len(files) // 4)
        for start in range(0, len(files), batch_size):
            stream.ingest(files[start : start + batch_size])
        mono_run = NTadocEngine(monolithic).run(WordCount())
        merged = stream.run(WordCount())
        rendered_mono = {
            monolithic.vocab[k]: v for k, v in mono_run.result.items()
        }
        rendered_stream = {
            stream.vocab[k]: v for k, v in merged.result.items()
        }
        assert rendered_mono == rendered_stream
        return (
            monolithic.grammar_length(),
            stream.grammar_length(),
            mono_run.total_ns,
            merged.total_ns,
        )

    mono_glen, stream_glen, mono_ns, stream_ns = once(benchmark, measure)
    print()
    print(
        f"streaming overhead (dataset B @0.2, 4 batches): grammar "
        f"{stream_glen / mono_glen:.2f}x larger, analytics "
        f"{stream_ns / mono_ns:.2f}x slower than monolithic"
    )
    # Exactness is asserted above; the overheads must stay bounded.
    assert stream_glen >= mono_glen
    assert stream_ns < 5 * mono_ns
