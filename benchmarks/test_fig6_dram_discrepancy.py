"""Fig. 6: N-TADOC's discrepancy to TADOC on a pure DRAM platform.

Paper findings: N-TADOC is 1.59x slower than DRAM TADOC on average; word
count shows the largest slowdown (2.26x: the simplest benchmark gains
the least from amortizing NVM management); the gap narrows as datasets
grow because cache utilization improves.
"""

from conftest import DATASETS, TASKS, once

from repro.harness import figures
from repro.harness.comparisons import geometric_mean


def test_fig6_dram_discrepancy(benchmark, runs):
    figure = once(benchmark, figures.fig6, runs)
    print()
    print(figure.render())
    matrix = figure.data["matrix"]

    # Shape 1: DRAM TADOC is the upper bound -- N-TADOC is slower
    # everywhere, but within a small constant factor.
    assert all(s >= 1.0 for s in matrix.values())
    assert 1.2 <= figure.data["geomean"] <= 2.4

    # Shape 2: word count is among the largest slowdowns (paper: 2.26x,
    # the worst of the six): the simplest task amortizes NVM memory
    # management the least.
    per_task = {
        task: geometric_mean([matrix[d, task] for d in DATASETS])
        for task in TASKS
    }
    ranked = sorted(per_task, key=per_task.get, reverse=True)
    assert "word_count" in ranked[: len(ranked) // 2], per_task

    # Shape 3: the gap does not widen from the small corpus to the large
    # ones (the paper's cache-utilization argument).
    per_dataset = {
        dataset: geometric_mean([matrix[dataset, t] for t in TASKS])
        for dataset in DATASETS
    }
    assert per_dataset["A"] >= per_dataset["D"] * 0.9
