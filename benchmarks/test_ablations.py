"""Design-choice ablations for the three N-TADOC techniques.

Each ablation disables exactly one design decision and measures the cost
increase on the same workload, isolating the contribution of:

1. the pruned adjacent pool layout (Section IV-B),
2. the bottom-up upper-bound pre-sizing (Section IV-C),
3. the head/tail structures for sequence analytics (Section IV-D) --
   measured as compressed sequence counting vs decompress-then-scan.
"""

from conftest import CACHE_DIR, once

from repro.analytics import task_by_name
from repro.core.engine import EngineConfig, NTadocEngine
from repro.datasets import corpus_for
from repro.harness.runner import run_system

_DATASET = "C"


def _corpus():
    return corpus_for(_DATASET, cache_dir=CACHE_DIR)


def test_ablation_pool_layout(benchmark):
    """Scattered/indirected layout vs the adjacent DAG pool."""

    def run_pair():
        corpus = _corpus()
        packed = run_system("ntadoc", corpus, task_by_name("word_count"))
        scattered = run_system(
            "ntadoc", corpus, task_by_name("word_count"),
            EngineConfig(scattered_layout=True),
        )
        assert packed.result == scattered.result
        return packed, scattered

    packed, scattered = once(benchmark, run_pair)
    ratio = scattered.total_ns / packed.total_ns
    print()
    print(
        f"pool-layout ablation (word_count/{_DATASET}): scattered layout is "
        f"{ratio:.2f}x slower than the pruned adjacent pool"
    )
    assert ratio > 1.3


def test_ablation_bound_presizing_structure_level(benchmark):
    """Algorithm-2 pre-sizing vs dynamic growth, at the structure level.

    This isolates the exact effect Section IV-C targets: filling a hash
    table whose final size is known.  The growable table pays repeated
    reconstruction (allocate, rehash every live entry, free); the
    bound-sized table pays nothing.
    """
    from repro.nvm.allocator import PoolAllocator
    from repro.nvm.device import DeviceProfile
    from repro.nvm.memory import SimulatedMemory
    from repro.pstruct.phashtable import PHashTable

    entries = 4000
    flush_every = 64  # a persistent structure keeps itself durable

    def fill(presized: bool) -> tuple[float, int, int]:
        mem = SimulatedMemory(DeviceProfile.nvm(), 1 << 22, cache_bytes=1 << 20)
        allocator = PoolAllocator(mem, base=0, capacity=mem.size)
        if presized:
            table = PHashTable.create(allocator, expected_entries=entries)
        else:
            table = PHashTable.create(
                allocator, expected_entries=4, growable=True
            )
        for i in range(entries):
            table.put(i * 2654435761 % (1 << 40), i)
            if i % flush_every == flush_every - 1:
                mem.flush()
        mem.flush()
        return mem.clock.ns, table.reconstructions, mem.stats.bytes_written

    def run_pair():
        return fill(presized=True), fill(presized=False)

    sized, grown = once(benchmark, run_pair)
    sized_ns, sized_rehash, sized_written = sized
    grow_ns, grow_rehash, grow_written = grown
    print()
    print(
        f"pre-sizing ablation (structure level, {entries} inserts): "
        f"growable pays {grow_rehash} reconstructions, writes "
        f"{grow_written / sized_written:.2f}x the bytes, time ratio "
        f"{grow_ns / sized_ns:.2f}x"
    )
    # The Algorithm-2-sized table never reconstructs; the growable one
    # repeatedly does, and its reconstruction copies show up as extra
    # device write traffic (an NVM endurance cost, Section VII).  The
    # *time* penalty depends on the device regime -- see EXPERIMENTS.md
    # for why it is mild at laptop scale in this cost model.
    assert sized_rehash == 0
    assert grow_rehash > 5
    assert grow_written > 1.5 * sized_written
    assert grow_ns > 0.6 * sized_ns  # and never an order-of-magnitude win


def test_ablation_bound_presizing_engine_level(benchmark):
    """Engine-level pre-sizing ablation: reconstruction traffic is real.

    At laptop scale the Algorithm-2 bounds overshoot enough that the
    *time* advantage can invert (the oversized tables spill the cache
    model while the compact grown tables fit -- see EXPERIMENTS.md), so
    this bench pins the invariant effects instead: growable structures
    rehash and write more bytes for identical results.
    """

    def run_pair():
        corpus = _corpus()
        sized = run_system(
            "ntadoc", corpus, task_by_name("term_vector"),
            EngineConfig(traversal="bottomup"),
        )
        growable = run_system(
            "ntadoc", corpus, task_by_name("term_vector"),
            EngineConfig(traversal="bottomup", growable_structures=True),
        )
        assert sized.result == growable.result
        return sized, growable

    sized, growable = once(benchmark, run_pair)
    print()
    print(
        f"pre-sizing ablation (term_vector/{_DATASET}, bottom-up): "
        f"bound-sized wrote {sized.pool_stats.bytes_written} B, growable "
        f"wrote {growable.pool_stats.bytes_written} B "
        f"(times: {sized.traversal_ns / 1e6:.2f} vs "
        f"{growable.traversal_ns / 1e6:.2f} sim ms)"
    )
    # Reconstruction (rehash) write traffic must be visible.
    assert growable.pool_stats.bytes_written > sized.pool_stats.bytes_written
    # The pre-sized run never reconstructs, so it also never frees and
    # reuses table blocks: its pool footprint is its high-water mark.
    assert sized.pool_peak > 0


def test_ablation_headtail_vs_decompression(benchmark):
    """Sequence analytics without decompression vs decompress-then-scan.

    The alternative to head/tail bridging is materializing the text: the
    engine variant here expands every file through the device (reading
    rule bodies recursively), then scans the expansion.  This is the
    "without decompression" headline claim, quantified.
    """

    def run_pair():
        corpus = _corpus()
        compressed = run_system(
            "ntadoc", corpus, task_by_name("sequence_count")
        )
        # Decompress-then-scan: the uncompressed engine charges exactly
        # the materialize-the-tokens-and-scan pipeline, but a fair
        # comparison adds the decompression read traffic, dominated by
        # re-reading rule bodies once per occurrence.  Approximate it by
        # the uncompressed run plus a full compressed-engine init.
        scan = run_system(
            "uncompressed_nvm", corpus, task_by_name("sequence_count")
        )
        assert compressed.result == scan.result
        return compressed, scan

    compressed, scan = once(benchmark, run_pair)
    ratio = scan.total_ns / compressed.total_ns
    print()
    print(
        f"head/tail ablation (sequence_count/{_DATASET}): decompress-then-"
        f"scan is {ratio:.2f}x slower than head/tail walking"
    )
    assert ratio > 1.2


def test_ablation_naive_is_worse_than_either_single_ablation(benchmark):
    """The full naive port combines both degradations (plus unbatched
    transactions) and must be worse than either alone."""

    def run_all():
        corpus = _corpus()
        task = lambda: task_by_name("word_count")
        full = run_system("naive_nvm", corpus, task())
        layout_only = run_system(
            "ntadoc", corpus, task(), EngineConfig(scattered_layout=True)
        )
        growth_only = run_system(
            "ntadoc", corpus, task(), EngineConfig(growable_structures=True)
        )
        return full, layout_only, growth_only

    full, layout_only, growth_only = once(benchmark, run_all)
    print()
    print(
        f"naive port: {full.total_ns / 1e6:.3f} sim ms; layout-only "
        f"ablation: {layout_only.total_ns / 1e6:.3f}; growth-only: "
        f"{growth_only.total_ns / 1e6:.3f}"
    )
    assert full.total_ns > layout_only.total_ns
    assert full.total_ns > growth_only.total_ns
