"""Fig. 5: N-TADOC speedup over uncompressed text analytics on NVM.

Paper: phase-level persistence averages 2.04x (Fig. 5a); operation-level
averages 1.40x (Fig. 5b), "because the persistence strategy at the
operation level introduces more overhead than the persistence at the
phase level".  Dataset B shows only moderate speedups on the file-info
benchmarks (term vector, inverted index) due to the bottom-up word-list
preprocessing.
"""

from conftest import DATASETS, once

from repro.harness import figures


def test_fig5a_phase_level(benchmark, runs):
    figure = once(benchmark, figures.fig5, runs, "phase")
    print()
    print(figure.render())
    matrix = figure.data["matrix"]
    # Paper: 2.04x average.  Shape: N-TADOC clearly wins on average.
    assert 1.4 <= figure.data["geomean"] <= 3.0
    # Dataset B's file-info benchmarks are its weakest (Section VI-B).
    b_file_tasks = min(matrix["B", "term_vector"], matrix["B", "inverted_index"])
    b_other = min(matrix["B", "word_count"], matrix["B", "sort"])
    assert b_file_tasks < b_other


def test_fig5b_operation_level(benchmark, runs):
    phase = figures.fig5(runs, "phase")
    figure = once(benchmark, figures.fig5, runs, "operation")
    print()
    print(figure.render())
    # Paper: 1.40x vs 2.04x -- operation-level persistence erodes the
    # advantage but N-TADOC still wins on average.
    assert figure.data["geomean"] < phase.data["geomean"]
    assert 1.0 <= figure.data["geomean"] <= 2.2


def test_operation_level_slows_both_systems(benchmark, runs):
    def collect():
        pairs = []
        for dataset in DATASETS:
            nt_phase = runs.get("ntadoc", dataset, "word_count")
            nt_op = runs.get("ntadoc_op", dataset, "word_count")
            pairs.append((nt_phase.total_ns, nt_op.total_ns))
        return pairs

    pairs = once(benchmark, collect)
    for phase_ns, op_ns in pairs:
        assert op_ns > phase_ns  # transactions are never free
