"""Table II: initialization/traversal time breakdown for datasets C and D.

Paper observations reproduced here:

* sort's traversal phase exceeds word count's (dictionary-order sorting
  is extra traversal work);
* sequence tasks carry their preprocessing in the initialization phase;
* per-phase speedups over the uncompressed baseline: the traversal phase
  accelerates more than the initialization phase (paper: 1.96x/2.53x on
  C, 1.23x/2.87x on D).
"""

from conftest import TASKS, once

from repro.harness import figures


def test_table2_breakdown(benchmark, runs):
    figure = once(benchmark, figures.table2, runs)
    print()
    print(figure.render())
    cells = figure.data["cells"]

    for dataset in ("C", "D"):
        # Sort's traversal exceeds word count's (extra sorting work).
        assert cells[dataset, "sort"][1] > cells[dataset, "word_count"][1]
        # Ranked inverted index is the heaviest traversal of the six.
        assert cells[dataset, "ranked_inverted_index"][1] == max(
            cells[dataset, t][1] for t in TASKS
        )
        # Sequence tasks pay their preprocessing in the init phase: their
        # init exceeds the bag-of-words tasks' init.
        assert cells[dataset, "sequence_count"][0] > cells[dataset, "word_count"][0]
        # Both phases take nonzero time everywhere.
        for task in TASKS:
            assert cells[dataset, task][0] > 0
            assert cells[dataset, task][1] > 0


def test_phase_speedups(benchmark, runs):
    figure = once(benchmark, figures.table2, runs)
    gains = figure.data["phase_gains"]
    print()
    for dataset, (init, trav) in gains.items():
        print(
            f"  dataset {dataset}: init speedup {init:.2f}x, "
            f"traversal speedup {trav:.2f}x"
        )
    # Paper: traversal-phase speedup exceeds init-phase speedup on both
    # large datasets ("the acceleration effect of N-TADOC is mostly
    # achieved in this [traversal] phase").
    for dataset, (init, trav) in gains.items():
        assert trav > init, f"dataset {dataset}: traversal should gain more"
