"""Wall-clock guard for the span tracing layer.

The tracer's contract has two halves.  The *simulated* half is absolute
and pinned by the tier-1 suite: tracing on or off, every charged
nanosecond is bit-identical, because the tracer only reads the clock.
This guard re-asserts that on a full engine workload and then pins the
*wall-clock* half: with tracing disabled the instrumentation sites are
single ``None`` checks, so a traced-capable build must not run
meaningfully slower than the same workload did before the obs layer
existed.  Tracing enabled may cost wall time (it snapshots device stats
at every span boundary) but is bounded too, so profiling stays usable
on every benchmark dataset.

Measured wall times land in ``BENCH_obs.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analytics import InvertedIndex, TermVector, WordCount
from repro.core.engine import EngineConfig, NTadocEngine
from repro.datasets.profiles import dataset_files
from repro.obs.tracer import Tracer
from repro.sequitur.compressor import compress_files

_OUT = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

_DATASET = "B"
_SCALE = 0.25


def _timed(corpus, tracer: Tracer | None) -> tuple[float, float, int]:
    engine = NTadocEngine(
        corpus, EngineConfig(traversal="bottomup", tracer=tracer)
    )
    tasks = [WordCount(), InvertedIndex(), TermVector()]
    start = time.perf_counter()
    plan = engine.run_many(tasks)
    wall = time.perf_counter() - start
    spans = sum(1 for _ in tracer.spans()) if tracer is not None else 0
    return wall, plan.total_ns, spans


def test_tracing_off_is_free_and_on_is_bounded():
    corpus = compress_files(dataset_files(_DATASET, _SCALE))

    # Interleave repetitions so transient machine load hits both modes;
    # keep the best (least-disturbed) wall time for each.
    off_wall, on_wall = float("inf"), float("inf")
    off_ns = on_ns = None
    spans = 0
    for _ in range(3):
        wall, ns, _unused = _timed(corpus, tracer=None)
        off_wall = min(off_wall, wall)
        off_ns = ns
        wall, ns, spans = _timed(corpus, tracer=Tracer())
        on_wall = min(on_wall, wall)
        on_ns = ns

    # The absolute half: tracing must not move one simulated nanosecond.
    assert on_ns == off_ns

    overhead = on_wall / off_wall
    _OUT.write_text(
        json.dumps(
            {
                "workload": {
                    "dataset": _DATASET,
                    "scale": _SCALE,
                    "tasks": ["word_count", "inverted_index", "term_vector"],
                    "spans_recorded": spans,
                },
                "untraced_wall_s": round(off_wall, 6),
                "traced_wall_s": round(on_wall, 6),
                "traced_overhead": round(overhead, 3),
                "simulated_ns": on_ns,
            },
            indent=2,
        )
        + "\n"
    )
    # Tracing this workload records a few dozen spans against hundreds
    # of thousands of simulated accesses: the stats snapshots at span
    # boundaries are noise next to the run itself.  2x is a loose bound
    # for shared CI machines; locally the ratio is ~1.0x.
    assert overhead < 2.0, f"tracing overhead {overhead:.2f}x wall"
