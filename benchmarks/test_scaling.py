"""Scaling behaviour with dataset size (Fig. 6, finding 3).

Paper: "the performance gap between N-TADOC and TADOC diminishes as the
dataset size increases ... as the dataset size grows, the cache hit rate
improves, leading to reduced memory latency", and conversely the
small-dataset Limitations discussion: "the size of the input text can
limit the effectiveness of N-TADOC".

This bench sweeps one dataset profile across scales and tracks both the
Fig. 5a speedup (should grow with size) and the Fig. 6 gap to DRAM
TADOC (should not grow with size).
"""

from conftest import CACHE_DIR, once

from repro.analytics import task_by_name
from repro.datasets import corpus_for
from repro.harness.runner import run_system
from repro.harness.tables import format_table

_SCALES = (0.25, 0.5, 1.0)
_TASK = "word_count"


def sweep():
    rows = []
    for scale in _SCALES:
        corpus = corpus_for("C", scale=scale, cache_dir=CACHE_DIR)
        tokens = sum(len(f) for f in corpus.expand_files())
        nt = run_system("ntadoc", corpus, task_by_name(_TASK))
        unc = run_system("uncompressed_nvm", corpus, task_by_name(_TASK))
        dram = run_system("tadoc_dram", corpus, task_by_name(_TASK))
        assert nt.result == unc.result == dram.result
        rows.append(
            (
                scale,
                tokens,
                unc.total_ns / nt.total_ns,   # Fig. 5a speedup
                nt.total_ns / dram.total_ns,  # Fig. 6 gap
            )
        )
    return rows


def test_scaling_with_dataset_size(benchmark):
    rows = once(benchmark, sweep)
    print()
    print(
        format_table(
            ["Scale", "Tokens", "Speedup vs uncompressed", "Gap to DRAM TADOC"],
            [
                [f"{s:g}", t, f"{sp:.2f}x", f"{gap:.2f}x"]
                for s, t, sp, gap in rows
            ],
            title="Scaling sweep (dataset C, word_count)",
        )
    )
    smallest = rows[0]
    largest = rows[-1]
    # Finding: the advantage over uncompressed analytics grows (or at
    # least does not shrink) with dataset size...
    assert largest[2] >= smallest[2] * 0.9
    # ...and the gap to the DRAM upper bound does not widen with size.
    assert largest[3] <= smallest[3] * 1.15
    # Sanity: every scale still wins against the uncompressed baseline.
    assert all(sp > 1.0 for _, _, sp, _ in rows)
