"""Table I: dataset statistics (file count, rule count, vocabulary size).

Regenerates the paper's dataset table for the scaled synthetic analogs.
Absolute counts are laptop-scale; the assertions pin the *structural*
relationships Table I documents (A is one file; B has by far the most
files with tiny documents; D is the largest corpus).
"""

from conftest import once

from repro.harness import figures


def test_table1(benchmark, runs):
    figure = once(benchmark, figures.table1, runs)
    print()
    print(figure.render())
    stats = figure.data["stats"]
    # A: a single file (Yelp COVID dump).
    assert stats["A"]["files"] == 1
    # B: the many-small-files corpus -- far more files than any other.
    assert stats["B"]["files"] > 100 * stats["A"]["files"]
    assert stats["B"]["files"] > 10 * stats["D"]["files"]
    # D: the largest corpus -- largest vocabulary and token volume, and
    # more rules than its smaller sibling C.
    assert stats["D"]["vocabulary"] == max(
        s["vocabulary"] for s in stats.values()
    )
    assert stats["D"]["tokens"] == max(s["tokens"] for s in stats.values())
    assert stats["D"]["rules"] > stats["C"]["rules"]
    # Grammar compression is strong on every dataset (paper: 90.8% avg).
    for s in stats.values():
        assert s["compressed_ratio"] < 0.5
