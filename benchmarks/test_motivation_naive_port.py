"""Section III-B motivation and Section VI-F cross-evaluation.

Paper numbers:

* "Directly applying Optane PM to TADOC incurs 13.37x performance
  overhead compared to the original [DRAM] version" (Section III-B);
* "N-TADOC on NVM achieves a 5x speedup over TADOC on NVM"
  (Section VI-F cross-evaluation).
"""

from conftest import DATASETS, once

from repro.harness import figures


def test_naive_port_overhead(benchmark, runs):
    figure = once(benchmark, figures.naive_port, runs)
    print()
    print(figure.render())
    overhead = figure.data["overhead_geomean"]
    cross = figure.data["cross_geomean"]

    # Shape 1: the naive port is dramatically slower than DRAM TADOC --
    # the whole motivation for NVM-aware design.
    assert overhead > 4.0
    # Shape 2: N-TADOC recovers most of that loss (paper: ~5x).
    assert 2.0 <= cross <= 12.0
    # Shape 3: consistency on every dataset: DRAM < N-TADOC < naive.
    for row in figure.rows:
        assert float(row[1]) > float(row[2]) > 1.0


def test_naive_port_pays_reconstructions(benchmark, runs):
    """The port's growable structures actually churn; N-TADOC's
    bound-sized structures never do."""

    def observe():
        naive = runs.get("naive_nvm", "A", "word_count")
        nt = runs.get("ntadoc", "A", "word_count")
        return naive.pool_stats.bytes_written, nt.pool_stats.bytes_written

    naive_written, nt_written = once(benchmark, observe)
    print()
    print(
        f"pool bytes written -- naive: {naive_written}, N-TADOC: {nt_written}"
    )
    assert naive_written > nt_written  # reconstruction + log churn


def test_naive_port_consistent_across_datasets(benchmark, runs):
    figure = once(benchmark, figures.naive_port, runs)
    overheads = [float(row[1]) for row in figure.rows]
    assert max(overheads) / min(overheads) < 3.0, (
        "the port's overhead should be a systematic effect, not a "
        "single-dataset artifact"
    )
    assert len(overheads) == len(DATASETS)
