"""Wall-clock guard for the always-on metrics registry and black box.

Mirror of :mod:`benchmarks.test_obs_overhead`, for the metrics layer.
The *simulated* half of the contract is absolute and tier-1-pinned:
metrics on or off, every charged nanosecond is ``==``, because
recording only reads the clock and the flight recorder rides uncharged
pokes.  This guard re-asserts that on the wc+ii+tv trio and then pins
the *wall-clock* half: the registry is on by default, so the
instrumentation (counter bumps, journal events, per-flush ring slots)
must stay within 5% of a metrics-off run or "always-on" stops being
honest.

Measured wall times land in ``BENCH_metrics.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analytics import InvertedIndex, TermVector, WordCount
from repro.core.engine import EngineConfig, NTadocEngine
from repro.datasets.profiles import dataset_files
from repro.sequitur.compressor import compress_files

_OUT = Path(__file__).resolve().parent.parent / "BENCH_metrics.json"

_DATASET = "B"
_SCALE = 0.25


def _timed(corpus, metrics: bool) -> tuple[float, float, int]:
    engine = NTadocEngine(corpus, EngineConfig(metrics=metrics))
    tasks = [WordCount(), InvertedIndex(), TermVector()]
    start = time.perf_counter()
    plan = engine.run_many(tasks)
    wall = time.perf_counter() - start
    events = len(engine.journal.events) if engine.journal is not None else 0
    return wall, plan.total_ns, events


def test_metrics_on_charges_identically_and_stays_cheap():
    corpus = compress_files(dataset_files(_DATASET, _SCALE))

    # Interleave repetitions so transient machine load hits both modes;
    # keep the best (least-disturbed) wall time for each.
    off_wall, on_wall = float("inf"), float("inf")
    off_ns = on_ns = None
    events = 0
    for _ in range(5):
        wall, ns, _unused = _timed(corpus, metrics=False)
        off_wall = min(off_wall, wall)
        off_ns = ns
        wall, ns, events = _timed(corpus, metrics=True)
        on_wall = min(on_wall, wall)
        on_ns = ns

    # The absolute half: metrics must not move one simulated nanosecond.
    assert on_ns == off_ns

    overhead = on_wall / off_wall
    _OUT.write_text(
        json.dumps(
            {
                "workload": {
                    "dataset": _DATASET,
                    "scale": _SCALE,
                    "tasks": ["word_count", "inverted_index", "term_vector"],
                    "journal_events": events,
                },
                "metrics_off_wall_s": round(off_wall, 6),
                "metrics_on_wall_s": round(on_wall, 6),
                "metrics_overhead": round(overhead, 3),
                "simulated_ns": on_ns,
            },
            indent=2,
        )
        + "\n"
    )
    # The trio emits a few dozen events and counter bumps against
    # hundreds of thousands of simulated accesses; the best-of-5
    # interleaved measurement absorbs CI noise, so the always-on budget
    # can be tight.
    assert overhead <= 1.05, f"metrics overhead {overhead:.3f}x wall"
